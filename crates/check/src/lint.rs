//! Repo-invariant source lint, token edition.
//!
//! Rules run over the token stream of [`crate::lex`] (no rustc, no syn):
//! comments and string/char literals are single tokens with line spans,
//! `#[cfg(test)]` regions are tracked by brace depth across lines, and
//! every rule matches *token sequences* instead of line substrings — so
//! a call chain split across lines (`foo.\n    unwrap()`) is caught and
//! a pattern inside a raw string is not. Inline escapes:
//! `// lint:allow(<rule>)` on any line of the offending match, or on a
//! comment line directly above, suppresses that rule for the statement
//! that follows. Whole paths are allowlisted per rule where the
//! invariant is *about* the location (clocks belong in
//! `em-obs`/`em-bench`, `process::exit` in the CLI binary).
//!
//! The pre-token line scanner survives as [`crate::lint_legacy`] purely
//! as a differential-testing oracle: a proptest generates adversarial
//! source and asserts both scanners agree on the original seven rules.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{lex, Token, TokenKind};

/// One lint rule. Every rule is an invariant the ROADMAP's determinism
/// and production goals depend on; see [`Rule::rationale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in library (non-test) code.
    Unwrap,
    /// No `Instant::now` / `SystemTime` outside `em-obs` and `em-bench`.
    Clock,
    /// No unseeded RNG construction anywhere.
    Rng,
    /// No `process::exit` outside the CLI crate.
    Exit,
    /// No ad-hoc JSONL event-tag string literals outside the em-obs
    /// registry (`crates/obs/src/names.rs`).
    EventName,
    /// No raw `File::create` / `fs::write` in library code outside
    /// `crates/resilience`: a crash mid-write must never leave a torn
    /// file behind.
    AtomicIo,
    /// No ad-hoc string literals as `op_stats` op names: ops must be the
    /// `&'static str`s of `em_obs::names::ALL_OP_NAMES` so the profiler,
    /// the trace, and `promptem report` agree on op identity.
    OpName,
    /// Atomic read-modify-write calls must spell a literal `Ordering::`
    /// at the call site, and anything stronger than `Relaxed` needs a
    /// `// ordering:` justification comment.
    AtomicOrdering,
    /// No raw `thread::spawn` in library code: threads belong to the
    /// vendored pool/scheduler crates under `crates/compat/`.
    ThreadSpawn,
    /// Every `unsafe` block (and `unsafe impl`) carries a `// safety:`
    /// comment stating the invariant that makes it sound.
    UnsafeSafety,
    /// No `.lock().unwrap()` / `.lock().expect(` — poisoned-lock
    /// handling must be explicit (e.g. `PoisonError::into_inner`).
    LockUnwrap,
    /// No `std::net` sockets outside `crates/serve`: every wire byte in
    /// the workspace flows through the one crate whose protocol, fault
    /// injection, and drain semantics are tested.
    NetUse,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 12] = [
        Rule::Unwrap,
        Rule::Clock,
        Rule::Rng,
        Rule::Exit,
        Rule::EventName,
        Rule::AtomicIo,
        Rule::OpName,
        Rule::AtomicOrdering,
        Rule::ThreadSpawn,
        Rule::UnsafeSafety,
        Rule::LockUnwrap,
        Rule::NetUse,
    ];

    /// The four concurrency-correctness rules added for the parallel arc.
    pub const CONCURRENCY: [Rule; 4] = [
        Rule::AtomicOrdering,
        Rule::ThreadSpawn,
        Rule::UnsafeSafety,
        Rule::LockUnwrap,
    ];

    /// The rule's name — the token accepted by `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Clock => "clock",
            Rule::Rng => "rng",
            Rule::Exit => "exit",
            Rule::EventName => "event-name",
            Rule::AtomicIo => "atomic-io",
            Rule::OpName => "op-name",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::NetUse => "net-use",
        }
    }

    /// Why the rule exists (printed by `em-lint` on failure).
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::Unwrap => {
                "library code must surface failures as Result/TapeError, not abort the process"
            }
            Rule::Clock => {
                "wall-clock reads belong behind em_obs::Stopwatch so timing stays greppable \
                 and training logic stays deterministic"
            }
            Rule::Rng => {
                "unseeded RNG breaks run reproducibility; construct RNGs from an explicit seed"
            }
            Rule::Exit => "only the CLI may terminate the process; libraries return errors",
            Rule::EventName => {
                "JSONL event tags live in em_obs::names so producers, parsers, and \
                 analysis tools can never drift; use the EV_* consts"
            }
            Rule::AtomicIo => {
                "file writes must go through em_resilience::atomic_write (temp + fsync + \
                 rename) so a crash mid-write can never leave a torn file"
            }
            Rule::OpName => {
                "op_stats op names must be the em_obs::names::ALL_OP_NAMES consts, not ad-hoc \
                 literals, so trace attribution can never name an op the registry doesn't know"
            }
            Rule::AtomicOrdering => {
                "atomic call sites must spell their Ordering literally (no consts, no wrapper \
                 defaults) and justify anything stronger than Relaxed with an `// ordering:` \
                 comment — order bugs are invisible until a new platform or optimizer finds them"
            }
            Rule::ThreadSpawn => {
                "raw thread::spawn in library code bypasses the vendored pool/scheduler \
                 (crates/compat/) and makes runs unschedulable under em-sched model checking"
            }
            Rule::UnsafeSafety => {
                "every unsafe block must state the invariant that makes it sound in a \
                 `// safety:` comment, or the next refactor silently breaks it"
            }
            Rule::LockUnwrap => {
                ".lock().unwrap() turns one panicked thread into a process-wide cascade; \
                 handle PoisonError explicitly (into_inner or a typed error path)"
            }
            Rule::NetUse => {
                "raw std::net sockets bypass em-serve's admission control, failpoints, and \
                 drain semantics; all wire traffic goes through crates/serve"
            }
        }
    }

    /// Whether the rule still applies inside test code (`#[cfg(test)]`
    /// modules, `tests/`, `benches/`). Unwrapping in tests is idiomatic;
    /// clocks and unseeded RNG in tests are exactly how flaky tests and
    /// irreproducible failures get written, so those rules stay on — as
    /// does `unsafe-safety`, because unsound test code is still unsound.
    /// `atomic-ordering` is off in tests so model-checking tests can use
    /// the `em_sched` atomic shims, which model sequential consistency
    /// and deliberately take no `Ordering` argument.
    fn applies_to_test_code(self) -> bool {
        matches!(
            self,
            Rule::Clock | Rule::Rng | Rule::Exit | Rule::UnsafeSafety | Rule::NetUse
        )
    }

    /// Path-level allowlist: crates whose job is the forbidden thing,
    /// plus individual files with a documented reason.
    pub(crate) fn path_allowed(self, unix_rel: &str) -> bool {
        let allowed: &[&str] = match self {
            Rule::Clock => &["crates/obs/", "crates/bench/"],
            Rule::Exit => &["crates/cli/"],
            // cli_e2e.rs is a test-only module (`#[cfg(test)] mod cli_e2e;`
            // in main.rs) that lives in src/, so region tracking can't see
            // its test-ness from inside the file.
            Rule::Unwrap => &["crates/cli/src/cli_e2e.rs"],
            Rule::Rng => &[],
            // Tag literals are legitimate in exactly one place: the
            // registry that defines them.
            Rule::EventName => &["crates/obs/src/names.rs"],
            // The atomic writer itself, plus the test-only cli_e2e module
            // (same region-tracking blind spot as Unwrap above).
            Rule::AtomicIo => &["crates/resilience/", "crates/cli/src/cli_e2e.rs"],
            // Op names are defined in the registry; the tape profiler is
            // the one sanctioned emitter.
            Rule::OpName => &["crates/obs/src/names.rs", "crates/nn/src/tape.rs"],
            Rule::AtomicOrdering => &[],
            // Vendored concurrency substrates (the em-sched scheduler
            // today, the work-stealing pool next) own their raw threads.
            // `lint_repo` skips crates/compat entirely; the entry exists
            // so `lint_source` agrees when pointed at one of its files.
            // em-serve's worker actors, supervisor monitor, connection
            // readers, and load-driver connections *are* its job: the
            // pool shards data-parallel compute, but a service needs
            // long-lived blocking threads it can supervise and restart.
            Rule::ThreadSpawn => &["crates/compat/", "crates/serve/"],
            Rule::UnsafeSafety => &[],
            Rule::LockUnwrap => &[],
            // The one crate whose job is the network.
            Rule::NetUse => &["crates/serve/"],
        };
        allowed.iter().any(|prefix| unix_rel.starts_with(prefix))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One flagged match.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number of the first token of the match.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.snippet
        )
    }
}

/// Atomic read-modify-write method names distinctive enough to carry the
/// `atomic-ordering` rule without type information. `load`/`store`/`swap`
/// are deliberately absent: they collide with ubiquitous non-atomic
/// methods, so their discipline is enforced by the strong-ordering check
/// and code review instead.
const ATOMIC_RMW: [&str; 12] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// Ordering variants that demand an `// ordering:` justification.
const STRONG_ORDERINGS: [&str; 4] = ["SeqCst", "Acquire", "Release", "AcqRel"];

/// Everything the matchers need about one file, derived from its tokens
/// in a single structural pass.
struct FileCtx<'s> {
    /// The full token stream, comments included.
    tokens: Vec<Token<'s>>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    code: Vec<usize>,
    /// Per *token* (aligned with `tokens`): inside a `#[cfg(test)]`
    /// region, or between the attribute and its opening brace.
    in_test: Vec<bool>,
    /// Line → rules allowed by a `lint:allow(...)` comment on that line.
    line_allows: HashMap<usize, Vec<String>>,
    /// Carried escapes from comment-only lines: `(rule, first_tok,
    /// last_tok)` token-index windows covering the following statement.
    carried: Vec<(String, usize, usize)>,
    /// Lines carrying an `ordering:` justification comment.
    ordering_just: HashSet<usize>,
    /// Lines carrying a `safety:` justification comment.
    safety_just: HashSet<usize>,
    /// The raw source lines (for violation snippets).
    lines: Vec<&'s str>,
}

/// Extract `lint:allow(a, b)` rule names from one comment's text.
fn allows_in_comment(text: &str) -> Vec<String> {
    let Some(start) = text.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &text[start + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|s| s.trim().to_string())
        .collect()
}

impl<'s> FileCtx<'s> {
    fn build(source: &'s str) -> FileCtx<'s> {
        let tokens = lex(source);
        let lines: Vec<&str> = source.lines().collect();
        let mut code = Vec::new();
        let mut in_test = vec![false; tokens.len()];
        let mut depth_at = vec![0i64; tokens.len()];
        let mut line_allows: HashMap<usize, Vec<String>> = HashMap::new();
        let mut ordering_just = HashSet::new();
        let mut safety_just = HashSet::new();

        // Comment pass: escapes and justification markers.
        for t in &tokens {
            if !t.is_comment() {
                continue;
            }
            for name in allows_in_comment(t.text) {
                line_allows.entry(t.line).or_default().push(name);
            }
            for l in t.line..=t.last_line() {
                if t.text.contains("ordering:") {
                    ordering_just.insert(l);
                }
                if t.text.contains("safety:") {
                    safety_just.insert(l);
                }
            }
        }

        // Structural pass: brace depth and #[cfg(test)] regions. The
        // pending attribute latches onto the next `{`; a `;` at the same
        // depth first (e.g. `#[cfg(test)] mod cli_e2e;`) cancels it.
        let mut depth = 0i64;
        let mut pending: Option<i64> = None;
        let mut region: Option<i64> = None;
        for (i, t) in tokens.iter().enumerate() {
            depth_at[i] = depth;
            in_test[i] = region.is_some() || pending.is_some();
            if t.is_comment() {
                continue;
            }
            code.push(i);
            match (t.kind, t.text) {
                (TokenKind::Punct, "#") if is_cfg_test_attr(&tokens, i) => {
                    pending = Some(depth);
                }
                (TokenKind::Punct, "{") => {
                    if pending.is_some() && region.is_none() {
                        region = Some(depth);
                        pending = None;
                        in_test[i] = true;
                    }
                    depth += 1;
                }
                (TokenKind::Punct, "}") => {
                    depth -= 1;
                    if region.is_some_and(|outside| depth <= outside) {
                        region = None;
                    }
                }
                (TokenKind::Punct, ";") if pending.is_some_and(|d| d == depth) => {
                    pending = None;
                }
                _ => {}
            }
        }

        // Carried-escape pass: a `lint:allow` on a comment-only line
        // covers the whole statement that starts on the next code line
        // (up to the first `;` at that statement's depth, or the closing
        // brace of its block) — so multi-line statements can keep the
        // escape above them.
        let mut code_lines: HashSet<usize> = HashSet::new();
        for &i in &code {
            for l in tokens[i].line..=tokens[i].last_line() {
                code_lines.insert(l);
            }
        }
        let mut carried = Vec::new();
        for (ci, t) in tokens.iter().enumerate() {
            if !t.is_comment() {
                continue;
            }
            let names = allows_in_comment(t.text);
            if names.is_empty() || (t.line..=t.last_line()).any(|l| code_lines.contains(&l)) {
                continue;
            }
            let Some(&first) = code.iter().find(|&&i| i > ci) else {
                continue;
            };
            let d0 = depth_at[first];
            let mut last = tokens.len() - 1;
            for &i in code.iter().filter(|&&i| i >= first) {
                let tk = &tokens[i];
                let ends = (tk.kind == TokenKind::Punct && tk.text == ";" && depth_at[i] == d0)
                    || (tk.kind == TokenKind::Punct && tk.text == "}" && depth_at[i] <= d0);
                if ends {
                    last = i;
                    break;
                }
            }
            for name in names {
                carried.push((name, first, last));
            }
        }

        FileCtx {
            tokens,
            code,
            in_test,
            line_allows,
            carried,
            ordering_just,
            safety_just,
            lines,
        }
    }

    /// The `k`th code token, if any.
    fn tok(&self, k: usize) -> Option<&Token<'s>> {
        self.code.get(k).map(|&i| &self.tokens[i])
    }

    fn ident(&self, k: usize) -> Option<&str> {
        self.tok(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
    }

    fn is_ident(&self, k: usize, name: &str) -> bool {
        self.ident(k) == Some(name)
    }

    fn is_punct(&self, k: usize, c: char) -> bool {
        self.tok(k)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text.starts_with(c))
    }

    /// `::` at code positions k, k+1.
    fn is_path_sep(&self, k: usize) -> bool {
        self.is_punct(k, ':') && self.is_punct(k + 1, ':')
    }

    fn str_content(&self, k: usize) -> Option<&str> {
        self.tok(k).and_then(|t| t.str_content())
    }

    fn line_text(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_string())
    }

    /// Is the match starting at code index `k` (ending at `k_end`,
    /// inclusive) suppressed by an escape?
    fn suppressed(&self, rule: Rule, k: usize, k_end: usize) -> bool {
        let (Some(first), Some(last)) = (self.tok(k), self.tok(k_end.max(k))) else {
            return false;
        };
        for l in first.line..=last.last_line() {
            if self
                .line_allows
                .get(&l)
                .is_some_and(|names| names.iter().any(|n| n == rule.name()))
            {
                return true;
            }
        }
        let tok_idx = self.code[k];
        self.carried
            .iter()
            .any(|(name, s, e)| name == rule.name() && *s <= tok_idx && tok_idx <= *e)
    }

    /// Has a justification comment (`marker` ∈ {ordering, safety}) on the
    /// same line as code token `k` or within the three lines above it.
    fn justified(&self, just: &HashSet<usize>, k: usize) -> bool {
        let Some(t) = self.tok(k) else { return false };
        (t.line.saturating_sub(3)..=t.line).any(|l| just.contains(&l))
    }
}

/// Detect `#[cfg(test)]`-style attributes starting at token index `i`
/// (which holds `#`): scans the bracket group for `cfg` and `test`
/// idents, so `#[cfg(test)]` and `#[cfg(all(test, feature = "x"))]`
/// both count.
fn is_cfg_test_attr(tokens: &[Token<'_>], i: usize) -> bool {
    let mut j = i + 1;
    while j < tokens.len() && tokens[j].is_comment() {
        j += 1;
    }
    if !(tokens
        .get(j)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "["))
    {
        return false;
    }
    let mut brackets = 0i64;
    let (mut saw_cfg, mut saw_test) = (false, false);
    for t in &tokens[j..] {
        match (t.kind, t.text) {
            (TokenKind::Punct, "[") => brackets += 1,
            (TokenKind::Punct, "]") => {
                brackets -= 1;
                if brackets == 0 {
                    break;
                }
            }
            (TokenKind::Ident, "cfg") => saw_cfg = true,
            (TokenKind::Ident, "test") => saw_test = true,
            _ => {}
        }
    }
    saw_cfg && saw_test
}

/// A raw match: first and last *code* index (inclusive).
type Match = (usize, usize);

/// Find every place `rule` fires in the file, escapes not yet applied.
fn find_matches(rule: Rule, ctx: &FileCtx<'_>) -> Vec<Match> {
    let mut out = Vec::new();
    let n = ctx.code.len();
    for k in 0..n {
        match rule {
            Rule::Unwrap => {
                if ctx.is_punct(k, '.') && ctx.is_ident(k + 1, "unwrap") && ctx.is_punct(k + 2, '(')
                {
                    if ctx.is_punct(k + 3, ')') {
                        out.push((k, k + 3));
                    }
                } else if ctx.is_punct(k, '.')
                    && ctx.is_ident(k + 1, "expect")
                    && ctx.is_punct(k + 2, '(')
                {
                    out.push((k, k + 2));
                }
            }
            Rule::Clock => {
                if ctx.is_ident(k, "Instant")
                    && ctx.is_path_sep(k + 1)
                    && ctx.is_ident(k + 3, "now")
                {
                    out.push((k, k + 3));
                } else if ctx.is_ident(k, "SystemTime") {
                    out.push((k, k));
                }
            }
            Rule::Rng => {
                if ctx.is_ident(k, "thread_rng") || ctx.is_ident(k, "from_entropy") {
                    out.push((k, k));
                } else if ctx.is_ident(k, "rand")
                    && ctx.is_path_sep(k + 1)
                    && ctx.is_ident(k + 3, "random")
                {
                    out.push((k, k + 3));
                }
            }
            Rule::Exit => {
                if ctx.is_ident(k, "process")
                    && ctx.is_path_sep(k + 1)
                    && ctx.is_ident(k + 3, "exit")
                {
                    out.push((k, k + 3));
                }
            }
            Rule::EventName => {
                if let Some(content) = ctx.str_content(k) {
                    let hit = em_obs::names::ALL_EVENT_TAGS
                        .iter()
                        .any(|tag| content == *tag || content.contains(&format!("\"{tag}\"")));
                    if hit {
                        out.push((k, k));
                    }
                }
            }
            Rule::AtomicIo => {
                if (ctx.is_ident(k, "File")
                    && ctx.is_path_sep(k + 1)
                    && ctx.is_ident(k + 3, "create"))
                    || (ctx.is_ident(k, "fs")
                        && ctx.is_path_sep(k + 1)
                        && ctx.is_ident(k + 3, "write"))
                {
                    out.push((k, k + 3));
                }
            }
            Rule::OpName => {
                // lint:allow(event-name) — names the helper fn, not a tag.
                if ctx.is_ident(k, "op_stats")
                    && ctx.is_punct(k + 1, '(')
                    && ctx.str_content(k + 2).is_some()
                {
                    out.push((k, k + 2));
                } else if ctx.is_ident(k, "OpStats")
                    && ctx.is_punct(k + 1, '{')
                    && ctx.is_ident(k + 2, "op")
                    && ctx.is_punct(k + 3, ':')
                    && ctx.str_content(k + 4).is_some()
                {
                    out.push((k, k + 4));
                }
            }
            Rule::AtomicOrdering => {
                // (a) RMW call without a literal Ordering:: in its args.
                if k > 0
                    && ctx.is_punct(k - 1, '.')
                    && ctx.ident(k).is_some_and(|m| ATOMIC_RMW.contains(&m))
                    && ctx.is_punct(k + 1, '(')
                {
                    let (close, has_ordering) = scan_call_args(ctx, k + 1);
                    if !has_ordering {
                        out.push((k - 1, close));
                    }
                }
                // (b) strong ordering without an `// ordering:` comment.
                if ctx.is_ident(k, "Ordering")
                    && ctx.is_path_sep(k + 1)
                    && ctx
                        .ident(k + 3)
                        .is_some_and(|v| STRONG_ORDERINGS.contains(&v))
                    && !ctx.justified(&ctx.ordering_just, k)
                {
                    out.push((k, k + 3));
                }
            }
            Rule::ThreadSpawn => {
                if ctx.is_ident(k, "thread")
                    && ctx.is_path_sep(k + 1)
                    && ctx.is_ident(k + 3, "spawn")
                {
                    out.push((k, k + 3));
                }
            }
            Rule::UnsafeSafety => {
                if ctx.is_ident(k, "unsafe")
                    && (ctx.is_punct(k + 1, '{') || ctx.is_ident(k + 1, "impl"))
                    && !ctx.justified(&ctx.safety_just, k)
                {
                    out.push((k, k + 1));
                }
            }
            Rule::LockUnwrap => {
                if ctx.is_punct(k, '.')
                    && ctx.is_ident(k + 1, "lock")
                    && ctx.is_punct(k + 2, '(')
                    && ctx.is_punct(k + 3, ')')
                    && ctx.is_punct(k + 4, '.')
                    && (ctx.is_ident(k + 5, "unwrap") || ctx.is_ident(k + 5, "expect"))
                    && ctx.is_punct(k + 6, '(')
                {
                    out.push((k, k + 6));
                }
            }
            Rule::NetUse => {
                // Socket type names (used or imported) and the std::net
                // module path itself both count.
                if ctx
                    .ident(k)
                    .is_some_and(|i| matches!(i, "TcpListener" | "TcpStream" | "UdpSocket"))
                {
                    out.push((k, k));
                } else if ctx.is_ident(k, "std")
                    && ctx.is_path_sep(k + 1)
                    && ctx.is_ident(k + 3, "net")
                    && ctx.is_path_sep(k + 4)
                {
                    out.push((k, k + 3));
                }
            }
        }
    }
    out
}

/// Scan a call's argument list from the code index of its `(`; returns
/// the code index of the matching `)` (or the last token) and whether a
/// literal `Ordering::<variant>` appears among the arguments.
fn scan_call_args(ctx: &FileCtx<'_>, open: usize) -> (usize, bool) {
    let mut parens = 0i64;
    let mut has_ordering = false;
    let mut k = open;
    loop {
        if ctx.is_punct(k, '(') {
            parens += 1;
        } else if ctx.is_punct(k, ')') {
            parens -= 1;
            if parens == 0 {
                return (k, has_ordering);
            }
        } else if ctx.is_ident(k, "Ordering")
            && ctx.is_path_sep(k + 1)
            && ctx.ident(k + 3).is_some()
        {
            has_ordering = true;
        }
        k += 1;
        if ctx.tok(k).is_none() {
            return (k.saturating_sub(1), has_ordering);
        }
    }
}

/// Lint one file's source. `rel_path` is the path relative to the repo
/// root (it drives the per-rule allowlists and test-code detection).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let unix_rel = rel_path.replace('\\', "/");
    let path_is_test = ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| unix_rel.starts_with(d) || unix_rel.contains(&format!("/{d}")));

    let ctx = FileCtx::build(source);
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (ri, rule) in Rule::ALL.iter().enumerate() {
        if rule.path_allowed(&unix_rel) {
            continue;
        }
        for (k, k_end) in find_matches(*rule, &ctx) {
            let tok_idx = ctx.code[k];
            let in_test = path_is_test || ctx.in_test[tok_idx];
            if in_test && !rule.applies_to_test_code() {
                continue;
            }
            if ctx.suppressed(*rule, k, k_end) {
                continue;
            }
            seen.insert((ctx.tokens[tok_idx].line, ri));
        }
    }
    seen.into_iter()
        .map(|(line, ri)| Violation {
            file: PathBuf::from(rel_path),
            line,
            rule: Rule::ALL[ri],
            snippet: ctx.line_text(line),
        })
        .collect()
}

/// Directories never scanned: build output, VCS, vendored third-party
/// code, and test fixtures (which seed violations on purpose).
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "compat" | "fixtures") || name.starts_with('.')
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (skipping `target/`, `.git/`,
/// vendored `compat/`, and `fixtures/`). Files are visited in sorted
/// order so output is deterministic.
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_source(&rel.to_string_lossy(), &source));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = r##"
fn f() {
    let s = "call .unwrap() later";
    // .unwrap() in a comment
    /* Instant::now in a block comment */
    let r = "thread_rng";
}
"##;
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn every_registry_tag_fires_the_event_name_rule() {
        // The rule reads em_obs::names::ALL_EVENT_TAGS directly, so the
        // two can never drift; still, pin that each tag actually fires.
        for tag in em_obs::names::ALL_EVENT_TAGS {
            let src = format!("pub fn tag() -> &'static str {{ \"{tag}\" }}\n");
            let v = lint_source("crates/core/src/x.rs", &src);
            assert_eq!(v.len(), 1, "tag {tag}: {v:?}");
            assert_eq!(v[0].rule, Rule::EventName);
        }
    }

    #[test]
    fn event_tag_literals_fire_outside_the_registry_only() {
        let src = "pub fn tag() -> &'static str { \"epoch_summary\" }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::EventName);
        // The registry itself, test code, and comments are all exempt.
        assert!(lint_source("crates/obs/src/names.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        let comment = "// the \"epoch_summary\" event\npub fn f() {}\n";
        assert!(lint_source("crates/core/src/x.rs", comment).is_empty());
        // Tags as substrings of longer strings don't fire.
        let longer = "pub fn m() -> String { \"epoch_summary_v2\".into() }\n";
        assert!(lint_source("crates/core/src/x.rs", longer).is_empty());
    }

    #[test]
    fn raw_writes_fire_outside_the_resilience_crate() {
        let src = "fn save() { std::fs::write(\"out\", b\"x\").ok(); }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AtomicIo);
        // The atomic writer's own crate, test code, and escapes are exempt.
        assert!(lint_source("crates/resilience/src/atomic_io.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        let escaped =
            "fn save() { std::fs::write(\"out\", b\"x\").ok(); } // lint:allow(atomic-io)\n";
        assert!(lint_source("crates/core/src/x.rs", escaped).is_empty());
        let create = "fn open() { let _ = std::fs::File::create(\"out\"); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", create).len(), 1);
    }

    #[test]
    fn ad_hoc_op_stats_names_fire_outside_the_tape() {
        let src = "fn leak() { em_obs::op_stats(\"my_op\", 1, 2, 3, 4, 5, 6); }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::OpName);
        // The raw event variant is covered too.
        let raw = "fn leak() { emit(EventKind::OpStats { op: \"my_op\".into(), fwd_calls: 0, fwd_us: 0, bwd_calls: 0, bwd_us: 0, elems: 0, bytes: 0 }); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", raw).len(), 1);
        // The registry, the tape profiler, and test code are exempt.
        assert!(lint_source("crates/obs/src/names.rs", src).is_empty());
        assert!(lint_source("crates/nn/src/tape.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        // Registry-const call sites never carry a quoted name.
        let ok = "fn flush(name: &'static str) { em_obs::op_stats(name, 1, 2, 3, 4, 5, 6); }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "
fn lib_code() {
    x.unwrap();
}
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn more_lib() { z.unwrap(); }
";
        let v = lint_source("crates/core/src/x.rs", src);
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, [3, 9], "test-module unwrap must be exempt: {v:?}");
    }

    #[test]
    fn cfg_test_on_a_path_module_does_not_poison_following_code() {
        // The old line scanner latched `#[cfg(test)] mod x;` onto the
        // next `{` anywhere in the file; the token engine cancels the
        // pending attribute at the `;`.
        let src = "
#[cfg(test)]
mod helpers;
fn lib_code() { x.unwrap(); }
";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn atomic_ordering_rule() {
        // Literal Relaxed is fine, no comment needed.
        let ok = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
        // A hidden ordering (const, wrapper default) fires.
        let hidden = "fn f(a: &AtomicU64) { a.fetch_add(1, ORD); }\n";
        let v = lint_source("crates/core/src/x.rs", hidden);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AtomicOrdering);
        // Strong orderings need an `// ordering:` justification.
        let strong = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::SeqCst); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", strong).len(), 1);
        let justified = "\
// ordering: SeqCst pairs the publish with the reader's first load
fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::SeqCst); }\n";
        assert!(lint_source("crates/core/src/x.rs", justified).is_empty());
        let same_line =
            "fn f(a: &AtomicU64) { a.store(true, Ordering::Release); } // ordering: publishes init\n";
        assert!(lint_source("crates/core/src/x.rs", same_line).is_empty());
        // Non-atomic Ordering enums (cmp) never fire.
        let cmp = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }\n";
        assert!(lint_source("crates/core/src/x.rs", cmp).is_empty());
        // fetch_update's two orderings count as literal.
        let upd = "fn f(a: &AtomicU64) { let _ = a.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v + 1)); }\n";
        assert!(lint_source("crates/core/src/x.rs", upd).is_empty());
    }

    #[test]
    fn thread_spawn_rule() {
        let src = "fn go() { std::thread::spawn(|| {}); }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
        // Tests, the vendored concurrency crates, and em-serve's actor
        // threads may spawn.
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        assert!(lint_source("crates/compat/pool/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/serve/src/supervisor.rs", src).is_empty());
    }

    #[test]
    fn unsafe_safety_rule() {
        let bare = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let v = lint_source("crates/core/src/x.rs", bare);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnsafeSafety);
        let commented = "\
fn f(p: *const u8) -> u8 {
    // safety: caller guarantees p is valid for reads
    unsafe { *p }
}\n";
        assert!(lint_source("crates/core/src/x.rs", commented).is_empty());
        let imp = "unsafe impl Sync for Cell {}\n";
        assert_eq!(lint_source("crates/core/src/x.rs", imp).len(), 1);
        let imp_ok = "// safety: access is serialized by the scheduler token\nunsafe impl Sync for Cell {}\n";
        assert!(lint_source("crates/core/src/x.rs", imp_ok).is_empty());
        // unsafe-safety applies in test code too.
        let in_test = "#[cfg(test)]\nmod t {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        assert_eq!(lint_source("crates/core/src/x.rs", in_test).len(), 1);
    }

    #[test]
    fn net_use_rule() {
        let src = "use std::net::TcpStream;\nfn dial() { let _ = TcpStream::connect(\"x\"); }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule == Rule::NetUse), "{v:?}");
        assert_eq!(v.len(), 2, "{v:?}");
        // The serve crate is the sanctioned home for sockets — lib,
        // tests, everything under it.
        assert!(lint_source("crates/serve/src/server.rs", src).is_empty());
        assert!(lint_source("crates/serve/tests/chaos.rs", src).is_empty());
        // Sockets in other crates' *tests* still fire: wire traffic in a
        // test belongs behind em_serve::Client like everywhere else.
        assert_eq!(lint_source("crates/core/tests/t.rs", src).len(), 2);
        // The bare module path fires even without a socket type name.
        let path_only = "fn f() { let _ = std::net::lookup_host(\"x\"); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", path_only).len(), 1);
        // `net` as an ordinary identifier does not fire.
        let benign = "fn f() { let net = 3; let _ = net + 1; }\n";
        assert!(lint_source("crates/core/src/x.rs", benign).is_empty());
    }

    #[test]
    fn lock_unwrap_rule() {
        let src = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::LockUnwrap), "{v:?}");
        let expect = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().expect(\"poisoned\") }\n";
        assert!(lint_source("crates/core/src/x.rs", expect)
            .iter()
            .any(|v| v.rule == Rule::LockUnwrap));
        // Explicit poison handling is the sanctioned form.
        let ok = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner) }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
        // Idiomatic in tests.
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
    }
}
