//! Repo-invariant source lint.
//!
//! A dependency-free line scanner (no rustc, no syn) that strips
//! comments and string literals, tracks `#[cfg(test)]` regions by brace
//! depth, and then pattern-matches each rule. Inline escapes:
//! `// lint:allow(<rule>)` on the offending line suppresses that rule
//! there. Whole paths are allowlisted per rule where the invariant is
//! *about* the location (clocks belong in `em-obs`/`em-bench`,
//! `process::exit` in the CLI binary).

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint rule. Every rule is an invariant the ROADMAP's determinism
/// and production goals depend on; see [`Rule::rationale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in library (non-test) code.
    Unwrap,
    /// No `Instant::now` / `SystemTime` outside `em-obs` and `em-bench`.
    Clock,
    /// No unseeded RNG construction anywhere.
    Rng,
    /// No `process::exit` outside the CLI crate.
    Exit,
    /// No ad-hoc JSONL event-tag string literals outside the em-obs
    /// registry (`crates/obs/src/names.rs`).
    EventName,
    /// No raw `File::create` / `fs::write` in library code outside
    /// `crates/resilience`: a crash mid-write must never leave a torn
    /// file behind.
    AtomicIo,
    /// No ad-hoc string literals as `op_stats` op names: ops must be the
    /// `&'static str`s of `em_obs::names::ALL_OP_NAMES` so the profiler,
    /// the trace, and `promptem report` agree on op identity.
    OpName,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::Unwrap,
        Rule::Clock,
        Rule::Rng,
        Rule::Exit,
        Rule::EventName,
        Rule::AtomicIo,
        Rule::OpName,
    ];

    /// The rule's name — the token accepted by `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Clock => "clock",
            Rule::Rng => "rng",
            Rule::Exit => "exit",
            Rule::EventName => "event-name",
            Rule::AtomicIo => "atomic-io",
            Rule::OpName => "op-name",
        }
    }

    /// Why the rule exists (printed by `em-lint` on failure).
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::Unwrap => {
                "library code must surface failures as Result/TapeError, not abort the process"
            }
            Rule::Clock => {
                "wall-clock reads belong behind em_obs::Stopwatch so timing stays greppable \
                 and training logic stays deterministic"
            }
            Rule::Rng => {
                "unseeded RNG breaks run reproducibility; construct RNGs from an explicit seed"
            }
            Rule::Exit => "only the CLI may terminate the process; libraries return errors",
            Rule::EventName => {
                "JSONL event tags live in em_obs::names so producers, parsers, and \
                 analysis tools can never drift; use the EV_* consts"
            }
            Rule::AtomicIo => {
                "file writes must go through em_resilience::atomic_write (temp + fsync + \
                 rename) so a crash mid-write can never leave a torn file"
            }
            Rule::OpName => {
                "op_stats op names must be the em_obs::names::ALL_OP_NAMES consts, not ad-hoc \
                 literals, so trace attribution can never name an op the registry doesn't know"
            }
        }
    }

    /// Substrings that constitute a violation. Most rules match on
    /// sanitized code (strings blanked); [`Rule::matches_in_strings`]
    /// rules match with string contents kept, since the forbidden thing
    /// *is* a string literal.
    fn patterns(self) -> &'static [&'static str] {
        match self {
            Rule::Unwrap => &[".unwrap()", ".expect("],
            Rule::Clock => &["Instant::now", "SystemTime"],
            Rule::Rng => &["thread_rng", "from_entropy", "rand::random"],
            Rule::Exit => &["process::exit"],
            // The quoted forms of em_obs::names::ALL_EVENT_TAGS; the
            // `event_name_patterns_track_the_registry` test pins the two
            // lists together.
            Rule::EventName => &[
                "\"span_open\"",
                "\"span_close\"",
                "\"epoch_summary\"",
                "\"pseudo_select\"",
                "\"prune\"",
                "\"pretrain_step\"",
                "\"block\"",
                "\"non_finite\"",
                "\"audit\"",
                "\"message\"",
                "\"unc_hist\"",
                "\"metric\"",
                "\"ckpt_save\"",
                "\"ckpt_restore\"",
                "\"recovered_batch\"",
                "\"io_retry\"",
                "\"op_stats\"",
            ],
            Rule::AtomicIo => &["File::create", "fs::write"],
            // A string literal flowing into the op_stats emission path,
            // whether through the typed helper or the raw event variant.
            Rule::OpName => &["op_stats(\"", "OpStats { op: \""],
        }
    }

    /// Whether this rule's patterns target string-literal *contents* and
    /// therefore match on the strings-kept sanitized form.
    fn matches_in_strings(self) -> bool {
        matches!(self, Rule::EventName | Rule::OpName)
    }

    /// Whether the rule still applies inside test code (`#[cfg(test)]`
    /// modules, `tests/`, `benches/`). Unwrapping in tests is idiomatic;
    /// clocks and unseeded RNG in tests are exactly how flaky tests and
    /// irreproducible failures get written, so those rules stay on.
    fn applies_to_test_code(self) -> bool {
        matches!(self, Rule::Clock | Rule::Rng | Rule::Exit)
    }

    /// Path-level allowlist: crates whose job is the forbidden thing,
    /// plus individual files with a documented reason.
    fn path_allowed(self, unix_rel: &str) -> bool {
        let allowed: &[&str] = match self {
            Rule::Clock => &["crates/obs/", "crates/bench/"],
            Rule::Exit => &["crates/cli/"],
            // cli_e2e.rs is a test-only module (`#[cfg(test)] mod cli_e2e;`
            // in main.rs) that lives in src/, so region tracking can't see
            // its test-ness from inside the file.
            Rule::Unwrap => &["crates/cli/src/cli_e2e.rs"],
            Rule::Rng => &[],
            // Tag literals are legitimate in exactly one place: the
            // registry that defines them.
            Rule::EventName => &["crates/obs/src/names.rs"],
            // The atomic writer itself, plus the test-only cli_e2e module
            // (same region-tracking blind spot as Unwrap above).
            Rule::AtomicIo => &["crates/resilience/", "crates/cli/src/cli_e2e.rs"],
            // Op names are defined in the registry; the tape profiler is
            // the one sanctioned emitter.
            Rule::OpName => &["crates/obs/src/names.rs", "crates/nn/src/tape.rs"],
        };
        allowed.iter().any(|prefix| unix_rel.starts_with(prefix))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One flagged line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.snippet
        )
    }
}

/// Lexer state that survives across lines.
#[derive(Default)]
struct ScanState {
    /// Nesting depth of `/* */` block comments (Rust block comments nest).
    block_comment: usize,
    /// Inside a `"..."` string literal.
    in_string: bool,
    /// Inside a raw string literal; holds the number of `#`s to close it.
    raw_string: Option<usize>,
    /// Current brace depth.
    depth: i64,
    /// A `#[cfg(test)]` attribute was seen; latch onto the next `{`.
    pending_cfg_test: bool,
    /// Depth *outside* the active `#[cfg(test)]` region, if any.
    test_region: Option<i64>,
}

/// Sanitize one line two ways, while updating brace depth and
/// `#[cfg(test)]` region tracking. Returns `(code, code_with_strings)`:
/// the first has comments *and* string/char-literal contents blanked
/// (what most rules match on); the second blanks only comments, keeping
/// string contents for rules whose target is a string literal.
fn sanitize_line(raw: &str, st: &mut ScanState) -> (String, String) {
    // The attribute itself arrives before any brace; detect it on the raw
    // line (it never hides in a string in practice, and a false latch
    // only widens the test region, never narrows it).
    if raw.contains("#[cfg(test)]") && st.block_comment == 0 && !st.in_string {
        st.pending_cfg_test = true;
    }

    let bytes = raw.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    // The strings-kept form starts as the raw line; only comment regions
    // get blanked out of it below.
    let mut kept = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        if st.block_comment > 0 {
            if bytes[i..].starts_with(b"*/") {
                st.block_comment -= 1;
                kept[i] = b' ';
                kept[i + 1] = b' ';
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                st.block_comment += 1;
                kept[i] = b' ';
                kept[i + 1] = b' ';
                i += 2;
            } else {
                kept[i] = b' ';
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = st.raw_string {
            let mut closer = vec![b'"'];
            closer.resize(1 + hashes, b'#');
            if bytes[i..].starts_with(&closer) {
                st.raw_string = None;
                i += closer.len();
            } else {
                i += 1;
            }
            continue;
        }
        if st.in_string {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    st.in_string = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: blank the tail of the kept form too.
                for k in kept.iter_mut().skip(i) {
                    *k = b' ';
                }
                break;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                st.block_comment = 1;
                kept[i] = b' ';
                kept[i + 1] = b' ';
                i += 2;
            }
            b'"' => {
                st.in_string = true;
                i += 1;
            }
            b'r' => {
                // Possible raw string: r"..." or r#"..."#.
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    st.raw_string = Some(j - i - 1);
                    i = j + 1;
                } else {
                    out[i] = b'r';
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a char literal closes within a
                // few bytes ('x' or '\n'); a lifetime has no closing quote.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes[i + 2..]
                        .iter()
                        .position(|&b| b == b'\'')
                        .map(|p| i + 3 + p)
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                match close {
                    Some(end) => i = end + 1,
                    None => {
                        out[i] = b'\'';
                        i += 1;
                    }
                }
            }
            b'{' => {
                st.depth += 1;
                if st.pending_cfg_test && st.test_region.is_none() {
                    st.test_region = Some(st.depth - 1);
                    st.pending_cfg_test = false;
                }
                out[i] = b'{';
                i += 1;
            }
            b'}' => {
                st.depth -= 1;
                if let Some(outside) = st.test_region {
                    if st.depth <= outside {
                        st.test_region = None;
                    }
                }
                out[i] = b'}';
                i += 1;
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    (
        String::from_utf8_lossy(&out).into_owned(),
        String::from_utf8_lossy(&kept).into_owned(),
    )
}

/// Extract `lint:allow(a, b)` rule names from the raw line, if any.
fn allowed_on_line(raw: &str) -> Vec<&str> {
    let Some(start) = raw.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &raw[start + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end].split(',').map(str::trim).collect()
}

/// Lint one file's source. `rel_path` is the path relative to the repo
/// root (it drives the per-rule allowlists and test-code detection).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let unix_rel = rel_path.replace('\\', "/");
    let path_is_test = ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| unix_rel.starts_with(d) || unix_rel.contains(&format!("/{d}")));

    let mut st = ScanState::default();
    let mut out = Vec::new();
    // Escapes on a comment-only line carry over to the next code line,
    // so long lines can keep their `lint:allow` above them.
    let mut carried: Vec<String> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        // Read the region state *before* this line mutates it, so an
        // attribute/opening-brace line is classified with its body.
        let was_in_test_region = st.test_region.is_some() || st.pending_cfg_test;
        let (code, code_with_strings) = sanitize_line(raw, &mut st);
        let in_test = path_is_test || was_in_test_region || st.test_region.is_some();
        let mut escapes: Vec<String> = allowed_on_line(raw).into_iter().map(String::from).collect();
        let comment_only = code.trim().is_empty() && !raw.trim().is_empty();
        if comment_only {
            carried.extend(escapes.iter().cloned());
        } else {
            escapes.append(&mut carried);
        }
        for rule in Rule::ALL {
            if in_test && !rule.applies_to_test_code() {
                continue;
            }
            if rule.path_allowed(&unix_rel) || escapes.iter().any(|e| e == rule.name()) {
                continue;
            }
            let haystack = if rule.matches_in_strings() {
                &code_with_strings
            } else {
                &code
            };
            if rule.patterns().iter().any(|p| haystack.contains(p)) {
                out.push(Violation {
                    file: PathBuf::from(rel_path),
                    line: idx + 1,
                    rule,
                    snippet: raw.trim().to_string(),
                });
            }
        }
    }
    out
}

/// Directories never scanned: build output, VCS, vendored third-party
/// code, and test fixtures (which seed violations on purpose).
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "compat" | "fixtures") || name.starts_with('.')
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (skipping `target/`, `.git/`,
/// vendored `compat/`, and `fixtures/`). Files are visited in sorted
/// order so output is deterministic.
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_source(&rel.to_string_lossy(), &source));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = r##"
fn f() {
    let s = "call .unwrap() later";
    // .unwrap() in a comment
    /* Instant::now in a block comment */
    let r = "thread_rng";
}
"##;
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn event_name_patterns_track_the_registry() {
        let expected: Vec<String> = em_obs::names::ALL_EVENT_TAGS
            .iter()
            .map(|tag| format!("\"{tag}\""))
            .collect();
        let got: Vec<String> = Rule::EventName
            .patterns()
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(
            got, expected,
            "lint patterns drifted from em_obs::names::ALL_EVENT_TAGS"
        );
    }

    #[test]
    fn event_tag_literals_fire_outside_the_registry_only() {
        let src = "pub fn tag() -> &'static str { \"epoch_summary\" }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::EventName);
        // The registry itself, test code, and comments are all exempt.
        assert!(lint_source("crates/obs/src/names.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        let comment = "// the \"epoch_summary\" event\npub fn f() {}\n";
        assert!(lint_source("crates/core/src/x.rs", comment).is_empty());
        // Tags as substrings of longer strings don't fire.
        let longer = "pub fn m() -> String { \"epoch_summary_v2\".into() }\n";
        assert!(lint_source("crates/core/src/x.rs", longer).is_empty());
    }

    #[test]
    fn raw_writes_fire_outside_the_resilience_crate() {
        let src = "fn save() { std::fs::write(\"out\", b\"x\").ok(); }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AtomicIo);
        // The atomic writer's own crate, test code, and escapes are exempt.
        assert!(lint_source("crates/resilience/src/atomic_io.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        let escaped =
            "fn save() { std::fs::write(\"out\", b\"x\").ok(); } // lint:allow(atomic-io)\n";
        assert!(lint_source("crates/core/src/x.rs", escaped).is_empty());
        let create = "fn open() { let _ = std::fs::File::create(\"out\"); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", create).len(), 1);
    }

    #[test]
    fn ad_hoc_op_stats_names_fire_outside_the_tape() {
        let src = "fn leak() { em_obs::op_stats(\"my_op\", 1, 2, 3, 4, 5, 6); }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::OpName);
        // The raw event variant is covered too.
        let raw = "fn leak() { emit(EventKind::OpStats { op: \"my_op\".into(), fwd_calls: 0, fwd_us: 0, bwd_calls: 0, bwd_us: 0, elems: 0, bytes: 0 }); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", raw).len(), 1);
        // The registry, the tape profiler, and test code are exempt.
        assert!(lint_source("crates/obs/src/names.rs", src).is_empty());
        assert!(lint_source("crates/nn/src/tape.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        // Registry-const call sites never carry a quoted name.
        let ok = "fn flush(name: &'static str) { em_obs::op_stats(name, 1, 2, 3, 4, 5, 6); }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "
fn lib_code() {
    x.unwrap();
}
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn more_lib() { z.unwrap(); }
";
        let v = lint_source("crates/core/src/x.rs", src);
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, [3, 9], "test-module unwrap must be exempt: {v:?}");
    }
}
