//! Structural audit of a recorded autograd tape.
//!
//! The auditor walks the graph *backwards* from the loss along
//! [`em_nn::Tape::inputs`] and classifies everything the walk does not
//! reach. It is cheap (one DFS over an index vector) and runs at loss
//! construction — by the time `backward` fires, a silently detached
//! subgraph has already corrupted the training signal.

use std::collections::HashSet;
use std::fmt;

use em_nn::{ParamId, ParamStore, Tape, Var};

/// One audit finding. All variants are warnings, not errors: a dead node
/// wastes compute, a detached parameter silently never trains, an unused
/// parameter is registered trainable but never entered the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diag {
    /// A non-leaf node whose value was computed but is unreachable from
    /// the loss — gradient never flows through it.
    DeadNode {
        /// Tape index of the node.
        var: usize,
        /// Op that produced it.
        op: &'static str,
        /// Forward shape.
        shape: (usize, usize),
    },
    /// A parameter that was mirrored onto the tape but has no path to
    /// the loss: `backward` will leave its gradient at zero every step.
    DetachedParam {
        /// Store id of the parameter.
        id: ParamId,
        /// Registered name of the parameter.
        name: String,
        /// Tape index of its leaf.
        var: usize,
    },
    /// A trainable (unfrozen) parameter in the store that never entered
    /// this tape at all.
    UnusedParam {
        /// Store id of the parameter.
        id: ParamId,
        /// Registered name of the parameter.
        name: String,
    },
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diag::DeadNode { var, op, shape } => write!(
                f,
                "dead node #{var} (`{op}`, {}x{}): computed but unreachable from the loss",
                shape.0, shape.1
            ),
            Diag::DetachedParam { name, var, .. } => write!(
                f,
                "detached parameter `{name}` (node #{var}): on the tape with no gradient path to the loss"
            ),
            Diag::UnusedParam { name, .. } => write!(
                f,
                "unused parameter `{name}`: trainable but never recorded on this tape"
            ),
        }
    }
}

/// Summary of one [`audit`] pass.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Total nodes on the tape.
    pub nodes: usize,
    /// Nodes reachable from the loss.
    pub live: usize,
    /// Findings, in tape order (dead nodes, then detached, then unused).
    pub diags: Vec<Diag>,
}

impl AuditReport {
    /// Number of [`Diag::DeadNode`] findings.
    pub fn dead_nodes(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| matches!(d, Diag::DeadNode { .. }))
            .count()
    }

    /// Number of [`Diag::DetachedParam`] findings.
    pub fn detached_params(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| matches!(d, Diag::DetachedParam { .. }))
            .count()
    }

    /// Number of [`Diag::UnusedParam`] findings.
    pub fn unused_params(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| matches!(d, Diag::UnusedParam { .. }))
            .count()
    }

    /// True when the graph has no findings.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Audit the graph rooted at `loss`. `store` supplies parameter names and
/// frozen flags; pass the same store the tape's `param` leaves came from.
pub fn audit(tape: &Tape, loss: Var, store: &ParamStore) -> AuditReport {
    let mut reachable = vec![false; tape.len()];
    let mut stack = vec![loss];
    while let Some(v) = stack.pop() {
        if std::mem::replace(&mut reachable[v.index()], true) {
            continue;
        }
        stack.extend(tape.inputs(v));
    }

    let mut diags = Vec::new();
    for v in tape.vars() {
        if !reachable[v.index()] && !tape.is_leaf(v) {
            diags.push(Diag::DeadNode {
                var: v.index(),
                op: tape.op_name(v),
                shape: tape.shape(v),
            });
        }
    }

    let mut on_tape = HashSet::new();
    for (id, v) in tape.param_leaves() {
        on_tape.insert(id);
        if !reachable[v.index()] {
            diags.push(Diag::DetachedParam {
                id,
                name: store.name(id).to_string(),
                var: v.index(),
            });
        }
    }

    for id in store.ids() {
        if !store.is_frozen(id) && !on_tape.contains(&id) {
            diags.push(Diag::UnusedParam {
                id,
                name: store.name(id).to_string(),
            });
        }
    }

    AuditReport {
        nodes: tape.len(),
        live: reachable.iter().filter(|&&r| r).count(),
        diags,
    }
}

/// [`audit`], then mirror the result into `em-obs`: one `audit` summary
/// event always, plus a warn-level message per finding so traces pinpoint
/// the exact node/parameter.
pub fn audit_and_report(tape: &Tape, loss: Var, store: &ParamStore) -> AuditReport {
    let report = audit(tape, loss, store);
    em_obs::audit(
        report.nodes as u64,
        report.dead_nodes() as u64,
        report.detached_params() as u64,
        report.unused_params() as u64,
    );
    for diag in &report.diags {
        em_obs::warn(format!("graph audit: {diag}"));
    }
    report
}
