//! `em-check`: static analysis for the PromptEM reproduction.
//!
//! Three analyzers, all dependency-free:
//!
//! * [`audit`] — a structural pass over a recorded [`em_nn::Tape`] that
//!   reports dead nodes (computed but unreachable from the loss),
//!   detached parameters (on the tape with no gradient path to the
//!   loss — the classic "fine-tuned head never updates" bug), and
//!   registered-but-unrecorded trainable parameters. Diagnostics are
//!   typed ([`audit::Diag`]) instead of panics, and
//!   [`audit::audit_and_report`] mirrors the summary into `em-obs`.
//! * [`gradcheck`] — a central-finite-difference harness that compares
//!   the tape's reverse-mode gradients against numeric derivatives for
//!   any scalar-valued graph builder. The integration tests run it over
//!   every tape op.
//! * [`lint`] — a token-level source scanner (built on the [`lex`]
//!   module's minimal Rust lexer) enforcing repo invariants: no
//!   `unwrap`/`expect` in library code, no raw clocks outside
//!   `em-obs`/`em-bench`, no unseeded RNG, no `process::exit` outside
//!   the CLI, plus the concurrency family (`atomic-ordering`,
//!   `thread-spawn`, `unsafe-safety`, `lock-unwrap`) that gates the
//!   parallel arc. Escapes via `// lint:allow(<rule>)`. `cargo run -p
//!   em-check --bin em-lint` runs it over the repo and is wired into
//!   `scripts/ci.sh` as a hard gate.
//!
//! The record-time shape validation half of the story lives in `em-nn`
//! itself (`Tape::try_*` + [`em_nn::tape::TapeError`]), as does the
//! `PROMPTEM_SANITIZE=1` NaN/Inf sanitizer — this crate supplies the
//! passes that need whole-graph or whole-repo visibility.

#![warn(missing_docs)]

pub mod audit;
pub mod gradcheck;
pub mod lex;
pub mod lint;
#[doc(hidden)]
pub mod lint_legacy;

pub use audit::{audit_and_report, AuditReport, Diag};
pub use gradcheck::gradcheck;
pub use lint::{lint_repo, lint_source, Rule, Violation};
