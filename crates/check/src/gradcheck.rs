//! Central-finite-difference gradient checking for tape graphs.
//!
//! A builder closure records the same graph onto any tape it is handed;
//! the harness runs it once for reverse-mode gradients and `2·N` more
//! times (one ± pair per input element) for numeric derivatives, then
//! compares element-wise under a relative tolerance sized for `f32`.

use em_nn::{Matrix, Tape, Var};

/// Why a [`gradcheck`] failed.
#[derive(Debug, Clone)]
pub struct GradCheckFailure {
    /// Index of the offending input matrix.
    pub input: usize,
    /// Flat element index within that input.
    pub element: usize,
    /// Reverse-mode gradient.
    pub analytic: f32,
    /// Central-difference estimate.
    pub numeric: f32,
    /// Relative error that exceeded the tolerance.
    pub rel_err: f32,
}

impl std::fmt::Display for GradCheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradcheck: input {} element {}: analytic {} vs numeric {} (rel err {})",
            self.input, self.element, self.analytic, self.numeric, self.rel_err
        )
    }
}

/// Relative error with an absolute floor so near-zero gradients compare
/// under an absolute tolerance instead of blowing up.
fn rel_err(a: f32, b: f32) -> f32 {
    (a - b).abs() / 1.0f32.max(a.abs()).max(b.abs())
}

/// Check reverse-mode gradients of `build` against central finite
/// differences at `inputs`.
///
/// `build` receives a fresh tape and one constant-leaf [`Var`] per input
/// matrix and must return a scalar loss var; it is called `2·N + 1`
/// times, so it must be deterministic (seed any RNG it uses internally —
/// that is how dropout is gradchecked). `eps` is the perturbation step;
/// `tol` the max relative error. Returns the worst relative error seen.
pub fn gradcheck<F>(
    inputs: &[Matrix],
    build: F,
    eps: f32,
    tol: f32,
) -> Result<f32, GradCheckFailure>
where
    F: Fn(&mut Tape, &[Var]) -> Var,
{
    // Reverse-mode pass.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.constant(m.clone())).collect();
    let loss = build(&mut tape, &vars);
    tape.backward(loss);
    let analytic: Vec<Matrix> = vars.iter().map(|&v| tape.grad(v)).collect();

    let eval = |mats: &[Matrix]| -> f32 {
        let mut t = Tape::new();
        let vs: Vec<Var> = mats.iter().map(|m| t.constant(m.clone())).collect();
        let l = build(&mut t, &vs);
        t.value(l).item()
    };

    let mut worst = 0.0f32;
    for (i, input) in inputs.iter().enumerate() {
        for j in 0..input.len() {
            let mut plus: Vec<Matrix> = inputs.to_vec();
            plus[i].data_mut()[j] += eps;
            let mut minus: Vec<Matrix> = inputs.to_vec();
            minus[i].data_mut()[j] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[i].data()[j];
            let err = rel_err(a, numeric);
            if err > tol {
                return Err(GradCheckFailure {
                    input: i,
                    element: j,
                    analytic: a,
                    numeric,
                    rel_err: err,
                });
            }
            worst = worst.max(err);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_a_simple_chain() {
        let a = Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.25]);
        let worst = gradcheck(
            &[a],
            |t, vs| {
                let h = t.tanh(vs[0]);
                t.mean_all(h)
            },
            1e-2,
            1e-2,
        )
        .expect("tanh chain must gradcheck");
        assert!(worst < 1e-2);
    }

    #[test]
    fn catches_a_wrong_gradient() {
        // grad_reverse is identity forward but flips the gradient sign, so
        // comparing against forward finite differences must fail — which
        // doubles as proof the harness detects wrong gradients.
        let a = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let r = gradcheck(
            &[a],
            |t, vs| {
                let h = t.grad_reverse(vs[0], 1.0);
                t.mean_all(h)
            },
            1e-2,
            1e-2,
        );
        assert!(r.is_err(), "sign-flipped gradient must be detected");
    }
}
