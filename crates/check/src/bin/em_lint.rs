//! `em-lint`: run the repo-invariant lint over a source tree.
//!
//! ```text
//! cargo run -p em-check --bin em-lint [ROOT]
//! ```
//!
//! ROOT defaults to the current directory (CI runs it from the repo
//! root). Exits nonzero when any rule fires; each violation prints as
//! `path:line: [rule] snippet`, followed by the fired rules' rationales.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use em_check::lint::{lint_repo, Rule};

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let violations = match lint_repo(&root) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("em-lint: cannot scan {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if violations.is_empty() {
        println!("em-lint: clean ({} rules)", Rule::ALL.len());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    let fired: BTreeSet<&str> = violations.iter().map(|v| v.rule.name()).collect();
    println!("\nem-lint: {} violation(s)", violations.len());
    for rule in Rule::ALL {
        if fired.contains(rule.name()) {
            println!("  [{}] {}", rule.name(), rule.rationale());
        }
    }
    println!("  (suppress a line with `// lint:allow(<rule>)` if the use is deliberate)");
    ExitCode::FAILURE
}
