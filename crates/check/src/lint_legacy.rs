//! The pre-token line scanner, preserved verbatim as a differential
//! oracle.
//!
//! [`crate::lint`] replaced this per-line sanitizer with a token-level
//! engine; this module keeps the old algorithm alive so a proptest
//! (`crates/check/tests/lex_prop.rs`) can generate adversarial source
//! and assert the two scanners agree on the original seven rules. It is
//! `#[doc(hidden)]` and not part of the supported API: its known blind
//! spots (multi-line `.expect(` calls, patterns inside raw strings,
//! `#[cfg(test)] mod x;` latching onto an unrelated brace) are exactly
//! why it was replaced.

#![allow(missing_docs)]

use std::path::PathBuf;

use crate::lint::{Rule, Violation};

/// The seven rules the line scanner knew about.
pub const LEGACY_RULES: [Rule; 7] = [
    Rule::Unwrap,
    Rule::Clock,
    Rule::Rng,
    Rule::Exit,
    Rule::EventName,
    Rule::AtomicIo,
    Rule::OpName,
];

/// Substrings that constitute a violation, as the old scanner matched
/// them. Most rules match on sanitized code (strings blanked);
/// [`matches_in_strings`] rules match with string contents kept.
fn patterns(rule: Rule) -> &'static [&'static str] {
    match rule {
        Rule::Unwrap => &[".unwrap()", ".expect("],
        Rule::Clock => &["Instant::now", "SystemTime"],
        Rule::Rng => &["thread_rng", "from_entropy", "rand::random"],
        Rule::Exit => &["process::exit"],
        // The quoted forms of em_obs::names::ALL_EVENT_TAGS, frozen at
        // the time of the rewrite (the token engine reads the registry
        // directly).
        Rule::EventName => &[
            "\"span_open\"",
            "\"span_close\"",
            "\"epoch_summary\"",
            "\"pseudo_select\"",
            "\"prune\"",
            "\"pretrain_step\"",
            "\"block\"",
            "\"non_finite\"",
            "\"audit\"",
            "\"message\"",
            "\"unc_hist\"",
            "\"metric\"",
            "\"ckpt_save\"",
            "\"ckpt_restore\"",
            "\"recovered_batch\"",
            "\"io_retry\"",
            "\"op_stats\"",
        ],
        Rule::AtomicIo => &["File::create", "fs::write"],
        Rule::OpName => &["op_stats(\"", "OpStats { op: \""],
        _ => &[],
    }
}

fn matches_in_strings(rule: Rule) -> bool {
    matches!(rule, Rule::EventName | Rule::OpName)
}

fn applies_to_test_code(rule: Rule) -> bool {
    matches!(rule, Rule::Clock | Rule::Rng | Rule::Exit)
}

/// Lexer state that survives across lines.
#[derive(Default)]
struct ScanState {
    /// Nesting depth of `/* */` block comments (Rust block comments nest).
    block_comment: usize,
    /// Inside a `"..."` string literal.
    in_string: bool,
    /// Inside a raw string literal; holds the number of `#`s to close it.
    raw_string: Option<usize>,
    /// Current brace depth.
    depth: i64,
    /// A `#[cfg(test)]` attribute was seen; latch onto the next `{`.
    pending_cfg_test: bool,
    /// Depth *outside* the active `#[cfg(test)]` region, if any.
    test_region: Option<i64>,
}

/// Sanitize one line two ways, while updating brace depth and
/// `#[cfg(test)]` region tracking. Returns `(code, code_with_strings)`.
fn sanitize_line(raw: &str, st: &mut ScanState) -> (String, String) {
    if raw.contains("#[cfg(test)]") && st.block_comment == 0 && !st.in_string {
        st.pending_cfg_test = true;
    }

    let bytes = raw.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut kept = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        if st.block_comment > 0 {
            if bytes[i..].starts_with(b"*/") {
                st.block_comment -= 1;
                kept[i] = b' ';
                kept[i + 1] = b' ';
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                st.block_comment += 1;
                kept[i] = b' ';
                kept[i + 1] = b' ';
                i += 2;
            } else {
                kept[i] = b' ';
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = st.raw_string {
            let mut closer = vec![b'"'];
            closer.resize(1 + hashes, b'#');
            if bytes[i..].starts_with(&closer) {
                st.raw_string = None;
                i += closer.len();
            } else {
                i += 1;
            }
            continue;
        }
        if st.in_string {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    st.in_string = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                for k in kept.iter_mut().skip(i) {
                    *k = b' ';
                }
                break;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                st.block_comment = 1;
                kept[i] = b' ';
                kept[i + 1] = b' ';
                i += 2;
            }
            b'"' => {
                st.in_string = true;
                i += 1;
            }
            b'r' => {
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    st.raw_string = Some(j - i - 1);
                    i = j + 1;
                } else {
                    out[i] = b'r';
                    i += 1;
                }
            }
            b'\'' => {
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes[i + 2..]
                        .iter()
                        .position(|&b| b == b'\'')
                        .map(|p| i + 3 + p)
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                match close {
                    Some(end) => i = end + 1,
                    None => {
                        out[i] = b'\'';
                        i += 1;
                    }
                }
            }
            b'{' => {
                st.depth += 1;
                if st.pending_cfg_test && st.test_region.is_none() {
                    st.test_region = Some(st.depth - 1);
                    st.pending_cfg_test = false;
                }
                out[i] = b'{';
                i += 1;
            }
            b'}' => {
                st.depth -= 1;
                if let Some(outside) = st.test_region {
                    if st.depth <= outside {
                        st.test_region = None;
                    }
                }
                out[i] = b'}';
                i += 1;
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    (
        String::from_utf8_lossy(&out).into_owned(),
        String::from_utf8_lossy(&kept).into_owned(),
    )
}

/// Extract `lint:allow(a, b)` rule names from the raw line, if any.
fn allowed_on_line(raw: &str) -> Vec<&str> {
    let Some(start) = raw.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &raw[start + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end].split(',').map(str::trim).collect()
}

/// Lint one file's source with the old line-scanner algorithm.
pub fn lint_source_legacy(rel_path: &str, source: &str) -> Vec<Violation> {
    let unix_rel = rel_path.replace('\\', "/");
    let path_is_test = ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| unix_rel.starts_with(d) || unix_rel.contains(&format!("/{d}")));

    let mut st = ScanState::default();
    let mut out = Vec::new();
    let mut carried: Vec<String> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let was_in_test_region = st.test_region.is_some() || st.pending_cfg_test;
        let (code, code_with_strings) = sanitize_line(raw, &mut st);
        let in_test = path_is_test || was_in_test_region || st.test_region.is_some();
        let mut escapes: Vec<String> = allowed_on_line(raw).into_iter().map(String::from).collect();
        let comment_only = code.trim().is_empty() && !raw.trim().is_empty();
        if comment_only {
            carried.extend(escapes.iter().cloned());
        } else {
            escapes.append(&mut carried);
        }
        for rule in LEGACY_RULES {
            if in_test && !applies_to_test_code(rule) {
                continue;
            }
            if rule.path_allowed(&unix_rel) || escapes.iter().any(|e| e == rule.name()) {
                continue;
            }
            let haystack = if matches_in_strings(rule) {
                &code_with_strings
            } else {
                &code
            };
            if patterns(rule).iter().any(|p| haystack.contains(p)) {
                out.push(Violation {
                    file: PathBuf::from(rel_path),
                    line: idx + 1,
                    rule,
                    snippet: raw.trim().to_string(),
                });
            }
        }
    }
    out
}
