//! A minimal Rust lexer for the repo lint.
//!
//! Produces a flat token stream with line-number spans — no grammar, no
//! AST, just enough lexical structure that the lint rules can reason
//! about *tokens* instead of line substrings. The properties the old
//! per-line sanitizer could not provide and this lexer guarantees:
//!
//! * comments, string/char literals, and raw strings are single tokens
//!   even when they span lines, so rule patterns can never half-match
//!   inside one;
//! * a method chain split across lines (`foo.\n    unwrap()`) is the
//!   same token sequence as the one-line form;
//! * string-literal *contents* are available verbatim (for the rules
//!   whose target is a literal, like `event-name`), while every other
//!   rule sees only code tokens.
//!
//! The lexer is total: any byte sequence lexes without panicking.
//! Malformed input (unterminated strings or comments) produces a final
//! token that runs to end-of-file, which is the right behaviour for a
//! linter — `rustc` will reject the file anyway.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// Numeric literal (integer or float, any radix).
    Num,
    /// String literal (`"..."` or `b"..."`), escapes untouched.
    Str,
    /// Raw string literal (`r"..."`, `r#"..."#`, `br#"..."#`).
    RawStr,
    /// Char or byte literal (`'x'`, `'\n'`, `b'x'`).
    Char,
    /// `// ...` comment (text excludes the trailing newline).
    LineComment,
    /// `/* ... */` comment; Rust block comments nest.
    BlockComment,
    /// Any single other character (operators, braces, `#`, …).
    Punct,
}

/// One lexeme: its kind, the exact source slice, and where it starts.
#[derive(Debug, Clone, Copy)]
pub struct Token<'s> {
    /// The token's class.
    pub kind: TokenKind,
    /// The exact source text of the token, delimiters included.
    pub text: &'s str,
    /// Byte offset of the token's first byte in the source.
    pub offset: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token<'_> {
    /// 1-based line of the token's last byte (tokens can span lines).
    pub fn last_line(&self) -> usize {
        self.line + self.text.matches('\n').count()
    }

    /// True for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The inner text of a string or raw-string literal (between the
    /// quotes, escapes untouched). `None` for other kinds and for
    /// unterminated literals.
    pub fn str_content(&self) -> Option<&str> {
        if !matches!(self.kind, TokenKind::Str | TokenKind::RawStr) {
            return None;
        }
        let open = self.text.find('"')?;
        let close = match self.kind {
            TokenKind::Str => self.text.rfind('"')?,
            // Strip the closing hashes before looking for the close quote.
            TokenKind::RawStr => {
                self.text[..self.text.len() - trailing_hashes(self.text)].rfind('"')?
            }
            _ => return None,
        };
        if close > open {
            Some(&self.text[open + 1..close])
        } else {
            None
        }
    }
}

fn trailing_hashes(s: &str) -> usize {
    s.bytes().rev().take_while(|&b| b == b'#').count()
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src`. Whitespace is dropped; everything else lands in
/// exactly one token, in source order (a proptest pins the "ordered,
/// non-overlapping, gaps are whitespace" invariant).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        chars: src.char_indices().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    /// `(byte_offset, char)` pairs; indexing is by char position.
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    out: Vec<Token<'s>>,
}

impl<'s> Lexer<'s> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, pos: usize) -> usize {
        self.chars.get(pos).map_or(self.src.len(), |&(b, _)| b)
    }

    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start_pos: usize, start_line: usize) {
        let text = &self.src[self.byte_at(start_pos)..self.byte_at(self.pos)];
        self.out.push(Token {
            kind,
            text,
            offset: self.byte_at(start_pos),
            line: start_line,
        });
    }

    fn run(mut self) -> Vec<Token<'s>> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (start, line) = (self.pos, self.line);
            let kind = match c {
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    TokenKind::LineComment
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump_n(2);
                    let mut depth = 1usize;
                    while depth > 0 && self.peek(0).is_some() {
                        if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                            depth -= 1;
                            self.bump_n(2);
                        } else if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                            depth += 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    TokenKind::BlockComment
                }
                '"' => {
                    self.bump();
                    self.scan_str_body();
                    TokenKind::Str
                }
                '\'' => self.lifetime_or_char(),
                'r' | 'b' => self.raw_or_ident(),
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    TokenKind::Ident
                }
                c if c.is_ascii_digit() => {
                    self.scan_num();
                    TokenKind::Num
                }
                _ => {
                    self.bump();
                    TokenKind::Punct
                }
            };
            self.emit(kind, start, line);
        }
        self.out
    }

    /// Body of a `"..."` string, opening quote already consumed.
    fn scan_str_body(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.bump_n(2),
                '"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// At a `'`: decide lifetime vs char literal.
    fn lifetime_or_char(&mut self) -> TokenKind {
        if self.peek(1) == Some('\\') {
            // Escaped char literal: '\n', '\u{1F600}', '\''.
            self.bump_n(2); // quote + backslash
            self.bump(); // the escaped char itself (so '\'' works)
            while self.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                self.bump();
            }
            self.bump(); // closing quote (or newline on malformed input)
            return TokenKind::Char;
        }
        let next_is_name = self.peek(1).is_some_and(is_ident_start);
        if next_is_name && self.peek(2) != Some('\'') {
            // Lifetime or loop label: 'a, 'static.
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            return TokenKind::Lifetime;
        }
        // Char literal 'x' (or degenerate input; consume at most 3 chars).
        self.bump();
        if self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        TokenKind::Char
    }

    /// At `r` or `b`: raw string, byte string/char, raw ident, or ident.
    fn raw_or_ident(&mut self) -> TokenKind {
        let c = self.peek(0);
        // b'x' and b"..." byte literals.
        if c == Some('b') {
            if self.peek(1) == Some('\'') {
                self.bump();
                return self.lifetime_or_char();
            }
            if self.peek(1) == Some('"') {
                self.bump_n(2);
                self.scan_str_body();
                return TokenKind::Str;
            }
        }
        // r"..."/r#"..."#/br#"..."# raw strings.
        let after_prefix = if c == Some('b') && self.peek(1) == Some('r') {
            2
        } else if c == Some('r') {
            1
        } else {
            0
        };
        if after_prefix > 0 {
            let mut hashes = 0;
            while self.peek(after_prefix + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(after_prefix + hashes) == Some('"') {
                self.bump_n(after_prefix + hashes + 1);
                self.scan_raw_body(hashes);
                return TokenKind::RawStr;
            }
            if after_prefix == 1 && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                // Raw identifier r#match.
                self.bump_n(2);
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                return TokenKind::Ident;
            }
        }
        // Plain identifier starting with r/b.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }

    /// Body of a raw string, opening `"` already consumed; closes at
    /// `"` followed by exactly `hashes` `#`s.
    fn scan_raw_body(&mut self, hashes: usize) {
        while self.peek(0).is_some() {
            if self.peek(0) == Some('"') && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                self.bump_n(1 + hashes);
                return;
            }
            self.bump();
        }
    }

    /// Numeric literal: digits/underscores/alnum suffixes, plus a `.`
    /// only when a digit follows (so `0..n` and `1.max(2)` stay three
    /// and four tokens respectively).
    fn scan_num(&mut self) {
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => self.bump(),
                Some('.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    self.bump_n(2);
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("let x = a.unwrap();");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn multiline_tokens_carry_lines() {
        let toks = lex("a\n/* two\nlines */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].last_line(), 3);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r####"let s = r##"has "quotes" and #"# inside"##;"####);
        let raw = toks.iter().find(|t| t.kind == TokenKind::RawStr).unwrap();
        assert_eq!(
            raw.str_content(),
            Some(r###"has "quotes" and #"# inside"###)
        );
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let toks = kinds("r#match r\"raw\" br#\"b\"#");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match".into()));
        assert_eq!(toks[1].0, TokenKind::RawStr);
        assert_eq!(toks[2].0, TokenKind::RawStr);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'".into())));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let texts: Vec<String> = kinds("0..n 1.5 1.max(2) 0xFF_u32")
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            texts,
            ["0", ".", ".", "n", "1.5", "1", ".", "max", "(", "2", ")", "0xFF_u32"]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"never closed", "/* open", "r#\"open", "'", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let toks = kinds(r#"let s = "a \"quoted\" b"; x"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "x".into()));
    }
}
