//! Finite-difference gradcheck coverage for every `Tape` op.
//!
//! Each op records `op → elementwise-weight → mean_all` so the scalar
//! loss has a non-degenerate gradient through every output element (a
//! plain mean would zero out e.g. softmax rows, which sum to one). The
//! tolerance is 1e-2 relative — sized for f32 central differences.

use em_check::gradcheck;
use em_nn::{Matrix, Tape, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 1e-2;
const TOL: f32 = 1e-2;

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Like [`mat`] but keeps every element away from zero (for ops with a
/// kink at the origin, e.g. relu).
fn mat_off_zero(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    mat(rows, cols).prop_map(|m| m.map(|v| if v.abs() < 0.2 { v + 0.5 } else { v }))
}

/// Like [`mat`] but strictly positive (probability-like inputs).
fn mat_positive(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.2f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Like [`mat`] but with a per-column offset so no row is near-constant
/// (keeps layer-norm variance well away from zero).
fn mat_spread(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    mat(rows, cols).prop_map(move |m| {
        Matrix::from_fn(m.rows(), m.cols(), |r, c| {
            m.get(r, c) * 0.3 + [0.0f32, 1.5, -1.5, 3.0][c % 4]
        })
    })
}

/// Reduce `v` to a scalar through fixed elementwise weights, so every
/// output element contributes a distinct term to the loss.
fn weighted_mean(t: &mut Tape, v: Var) -> Var {
    let (r, c) = t.value(v).shape();
    let w = t.constant(Matrix::from_fn(r, c, |i, j| {
        0.05 * ((i * c + j) as f32) - 0.4
    }));
    let p = t.mul(v, w);
    t.mean_all(p)
}

macro_rules! check {
    ($inputs:expr, $build:expr) => {{
        let r = gradcheck($inputs, $build, EPS, TOL);
        prop_assert!(
            r.is_ok(),
            "{}",
            r.err().map(|e| e.to_string()).unwrap_or_default()
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul(a in mat(2, 3), b in mat(3, 2)) {
        check!(&[a, b], |t, vs| {
            let y = t.matmul(vs[0], vs[1]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn add(a in mat(2, 3), b in mat(2, 3)) {
        check!(&[a, b], |t, vs| {
            let y = t.add(vs[0], vs[1]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn add_row_broadcast(a in mat(3, 4), b in mat(1, 4)) {
        check!(&[a, b], |t, vs| {
            let y = t.add_row_broadcast(vs[0], vs[1]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn sub(a in mat(2, 3), b in mat(2, 3)) {
        check!(&[a, b], |t, vs| {
            let y = t.sub(vs[0], vs[1]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn mul(a in mat(2, 3), b in mat(2, 3)) {
        check!(&[a, b], |t, vs| {
            let y = t.mul(vs[0], vs[1]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn scale(a in mat(2, 3)) {
        check!(&[a], |t, vs| {
            let y = t.scale(vs[0], 1.7);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn add_const(a in mat(2, 3)) {
        check!(&[a], |t, vs| {
            let k = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.5);
            let y = t.add_const(vs[0], &k);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn transpose(a in mat(2, 3)) {
        check!(&[a], |t, vs| {
            let y = t.transpose(vs[0]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn tanh(a in mat(2, 3)) {
        check!(&[a], |t, vs| {
            let y = t.tanh(vs[0]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn sigmoid(a in mat(2, 3)) {
        check!(&[a], |t, vs| {
            let y = t.sigmoid(vs[0]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn gelu(a in mat(2, 3)) {
        check!(&[a], |t, vs| {
            let y = t.gelu(vs[0]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn relu(a in mat_off_zero(2, 3)) {
        check!(&[a], |t, vs| {
            let y = t.relu(vs[0]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn softmax_rows(a in mat(2, 4)) {
        check!(&[a], |t, vs| {
            let y = t.softmax_rows(vs[0]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn layer_norm(x in mat_spread(2, 4), gamma in mat_off_zero(1, 4), beta in mat(1, 4)) {
        check!(&[x, gamma, beta], |t, vs| {
            let y = t.layer_norm(vs[0], vs[1], vs[2], 1e-5);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn gather_rows(a in mat(4, 3)) {
        check!(&[a], |t, vs| {
            let y = t.gather_rows(vs[0], &[0, 2, 1, 2]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn dropout(a in mat(3, 4)) {
        // The builder reseeds its own RNG, so the mask is identical on
        // every (re-)evaluation and the op is piecewise linear.
        check!(&[a], |t, vs| {
            let mut rng = StdRng::seed_from_u64(11);
            let y = t.dropout(vs[0], 0.3, &mut rng);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn concat_rows(a in mat(2, 3), b in mat(1, 3)) {
        check!(&[a, b], |t, vs| {
            let y = t.concat_rows(&[vs[0], vs[1]]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn concat_cols(a in mat(2, 2), b in mat(2, 3)) {
        check!(&[a, b], |t, vs| {
            let y = t.concat_cols(&[vs[0], vs[1]]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn slice_rows(a in mat(4, 3)) {
        check!(&[a], |t, vs| {
            let y = t.slice_rows(vs[0], 1, 2);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn slice_cols(a in mat(3, 4)) {
        check!(&[a], |t, vs| {
            let y = t.slice_cols(vs[0], 1, 2);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn mean_rows(a in mat(3, 4)) {
        check!(&[a], |t, vs| {
            let y = t.mean_rows(vs[0]);
            weighted_mean(t, y)
        });
    }

    #[test]
    fn mean_all(a in mat(3, 4)) {
        check!(&[a], |t, vs| t.mean_all(vs[0]));
    }

    #[test]
    fn cross_entropy(logits in mat(3, 4)) {
        check!(&[logits], |t, vs| t.cross_entropy(vs[0], &[0, 3, 1]));
    }

    #[test]
    fn nll_probs(probs in mat_positive(3, 4)) {
        check!(&[probs], |t, vs| t.nll_probs(vs[0], &[2, 0, 3]));
    }

    #[test]
    fn mse_loss(pred in mat(2, 3)) {
        check!(&[pred], |t, vs| {
            let target = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 0.5);
            t.mse_loss(vs[0], &target)
        });
    }

    #[test]
    fn grad_reverse_flips_and_scales(a in mat(2, 3)) {
        // Forward finite differences cannot see the reversal, so check it
        // directly: grad through grad_reverse(λ) == -λ × grad without it.
        let lambda = 0.7f32;
        let mut t1 = Tape::new();
        let x1 = t1.constant(a.clone());
        let y1 = t1.grad_reverse(x1, lambda);
        let l1 = weighted_mean(&mut t1, y1);
        t1.backward(l1);
        let g_rev = t1.grad(x1);

        let mut t2 = Tape::new();
        let x2 = t2.constant(a);
        let l2 = weighted_mean(&mut t2, x2);
        t2.backward(l2);
        let g_id = t2.grad(x2);

        for (r, i) in g_rev.data().iter().zip(g_id.data()) {
            prop_assert!((r + lambda * i).abs() < 1e-5, "{r} vs {}", -lambda * i);
        }
    }
}
