//! The auditor must catch the bugs it exists for: dead subgraphs,
//! detached parameters, unrecorded trainable parameters — and the
//! sanitizer must pinpoint a planted NaN during backward.

use em_check::audit::{audit, audit_and_report, Diag};
use em_nn::tape::{sanitize_enabled, set_sanitize};
use em_nn::{Matrix, ParamStore, Tape};
use em_obs::EventKind;

#[test]
fn clean_graph_has_no_findings() {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::full(3, 2, 0.1));
    let mut tape = Tape::new();
    let x = tape.constant(Matrix::full(2, 3, 1.0));
    let wv = tape.param(&store, w);
    let h = tape.matmul(x, wv);
    let loss = tape.mean_all(h);
    let report = audit(&tape, loss, &store);
    assert!(report.is_clean(), "unexpected findings: {:?}", report.diags);
    assert_eq!(report.nodes, report.live);
}

#[test]
fn detects_dead_node() {
    let store = ParamStore::new();
    let mut tape = Tape::new();
    let a = tape.constant(Matrix::full(2, 2, 1.0));
    let b = tape.constant(Matrix::full(2, 2, 2.0));
    let dead = tape.add(a, b); // computed, then never used
    let live = tape.tanh(a);
    let loss = tape.mean_all(live);
    let report = audit(&tape, loss, &store);
    assert_eq!(report.dead_nodes(), 1);
    assert!(report
        .diags
        .iter()
        .any(|d| matches!(d, Diag::DeadNode { var, op: "add", .. } if *var == dead.index())));
}

#[test]
fn detects_detached_parameter() {
    let mut store = ParamStore::new();
    let used = store.register("head.weight", Matrix::full(2, 2, 0.1));
    let detached = store.register("head.bias", Matrix::full(1, 2, 0.0));
    let mut tape = Tape::new();
    let x = tape.constant(Matrix::full(2, 2, 1.0));
    let wv = tape.param(&store, used);
    let _bv = tape.param(&store, detached); // on the tape, never wired in
    let h = tape.matmul(x, wv);
    let loss = tape.mean_all(h);
    let report = audit(&tape, loss, &store);
    assert_eq!(report.detached_params(), 1);
    assert!(report
        .diags
        .iter()
        .any(|d| matches!(d, Diag::DetachedParam { name, .. } if name == "head.bias")));
}

#[test]
fn detects_unused_trainable_parameter() {
    let mut store = ParamStore::new();
    let used = store.register("w", Matrix::full(2, 2, 0.1));
    let forgotten = store.register("classifier.weight", Matrix::full(2, 2, 0.1));
    let frozen = store.register("embeddings", Matrix::full(2, 2, 0.1));
    store.set_frozen(frozen, true);
    let mut tape = Tape::new();
    let x = tape.constant(Matrix::full(2, 2, 1.0));
    let wv = tape.param(&store, used);
    let h = tape.matmul(x, wv);
    let loss = tape.mean_all(h);
    let report = audit(&tape, loss, &store);
    assert_eq!(report.unused_params(), 1, "{:?}", report.diags);
    assert!(report
        .diags
        .iter()
        .any(|d| matches!(d, Diag::UnusedParam { name, .. } if name == "classifier.weight")));
    let _ = forgotten;
}

#[test]
fn audit_and_report_emits_summary_event() {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::full(2, 2, 0.1));
    let (report, events) = em_obs::capture(|| {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(2, 2, 1.0));
        let wv = tape.param(&store, w);
        let a = tape.constant(Matrix::full(2, 2, 3.0));
        let _dead = tape.sigmoid(a);
        let h = tape.matmul(x, wv);
        let loss = tape.mean_all(h);
        audit_and_report(&tape, loss, &store)
    });
    assert_eq!(report.dead_nodes(), 1);
    let summary = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Audit {
                nodes,
                dead,
                detached,
                unused,
            } => Some((*nodes, *dead, *detached, *unused)),
            _ => None,
        })
        .expect("audit event must be emitted");
    assert_eq!(summary, (report.nodes as u64, 1, 0, 0));
    assert!(
        events.iter().any(
            |e| matches!(&e.kind, EventKind::Message { text, .. } if text.contains("dead node"))
        ),
        "per-finding warning expected"
    );
}

#[test]
fn sanitizer_pinpoints_planted_nan() {
    set_sanitize(true);
    assert!(sanitize_enabled());
    let ((), events) = em_obs::capture(|| {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(2, 2, 1.0));
        let poison = tape.constant(Matrix::from_vec(2, 2, vec![0.0, f32::NAN, 0.0, 0.0]));
        let h = tape.add(x, poison);
        let s = tape.tanh(h);
        let loss = tape.mean_all(s);
        tape.backward(loss);
    });
    set_sanitize(false);
    let hits: Vec<(String, String)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::NonFinite { op, stage, .. } => Some((op.clone(), stage.clone())),
            _ => None,
        })
        .collect();
    // The NaN propagates forward (add → tanh leaves tanh(NaN)=NaN) and
    // backward into gradients; at minimum the poisoned ops' values fire.
    assert!(
        hits.iter()
            .any(|(op, stage)| op == "add" && stage == "value"),
        "expected a value hit on `add`, got {hits:?}"
    );
    assert!(
        hits.iter().any(|(_, stage)| stage == "grad"),
        "expected at least one gradient hit, got {hits:?}"
    );
}

#[test]
fn sanitize_values_counts_poisoned_nodes() {
    let mut tape = Tape::new();
    let clean = tape.constant(Matrix::full(2, 2, 1.0));
    let poison = tape.constant(Matrix::from_vec(1, 2, vec![f32::INFINITY, 0.0]));
    let _ = tape.tanh(clean);
    let _ = poison;
    // Only the poisoned leaf is non-finite (tanh(1) is finite).
    assert_eq!(tape.sanitize_values(), 1);
}
