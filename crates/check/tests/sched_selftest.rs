//! Self-tests for the vendored `em-sched` interleaving checker.
//!
//! They live in `em-check` (rather than in the compat crate) so they run
//! under the workspace's tier-1 `cargo test` — the compat tree is
//! excluded from the workspace, and a checker that silently rotted would
//! take the whole concurrency gate down with it. Covered here: the
//! checker accepts correct code across all seeds, *finds* a seeded
//! shim-level lost update, explores distinct interleavings, replays a
//! seed deterministically, models mutex exclusion and blocking, reports
//! ABBA deadlocks, returns join values, and propagates panic messages.

use std::collections::HashSet;
use std::sync::{Arc, Mutex as StdMutex};

use em_sched::{check, explore, replay, sync, thread, Config, FailureKind};

#[test]
fn atomic_counter_is_correct_under_all_seeds() {
    check(|| {
        let c = Arc::new(sync::AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let c3 = Arc::clone(&c);
        let t1 = thread::spawn(move || {
            for _ in 0..4 {
                c2.fetch_add(1);
            }
        });
        let t2 = thread::spawn(move || {
            for _ in 0..4 {
                c3.fetch_add(1);
            }
        });
        t1.join();
        t2.join();
        assert_eq!(c.load(), 8);
    })
    .assert_ok();
}

/// The canonical lost update: `load(); store(v + 1)` is two scheduling
/// points, so another task's increment can vanish between them. The
/// checker must find an interleaving where it does.
#[test]
fn shim_level_lost_update_is_found() {
    let report = check(|| {
        let c = Arc::new(sync::AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let c3 = Arc::clone(&c);
        let bump = |c: &sync::AtomicU64| {
            let v = c.load();
            c.store(v + 1);
        };
        let t1 = thread::spawn(move || bump(&c2));
        let t2 = thread::spawn(move || bump(&c3));
        t1.join();
        t2.join();
        assert_eq!(c.load(), 2, "lost update");
    });
    let failure = report.failure.expect("checker missed the lost update");
    assert!(
        matches!(&failure.kind, FailureKind::Panic { message, .. } if message.contains("lost update")),
        "unexpected failure: {failure}"
    );
}

/// One seed = one schedule, and different seeds explore different
/// schedules. Record each execution's interleaving as the sequence of
/// task ids that won each round; the same seed must reproduce the same
/// sequence, and a seed sweep must produce at least two distinct ones.
#[test]
fn seeds_are_deterministic_and_diverse() {
    fn trace_for(seed: u64) -> Vec<u8> {
        let log: Arc<StdMutex<Vec<u8>>> = Arc::new(StdMutex::new(Vec::new()));
        let out = Arc::clone(&log);
        replay(seed, move || {
            let l1 = Arc::clone(&out);
            let l2 = Arc::clone(&out);
            let t1 = thread::spawn(move || {
                for _ in 0..3 {
                    thread::yield_now();
                    // The std mutex is held only for the push (no yield
                    // point inside), so it never blocks the scheduler.
                    l1.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(1);
                }
            });
            let t2 = thread::spawn(move || {
                for _ in 0..3 {
                    thread::yield_now();
                    l2.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(2);
                }
            });
            t1.join();
            t2.join();
        })
        .assert_ok();
        let v = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        v.clone()
    }

    let mut distinct: HashSet<Vec<u8>> = HashSet::new();
    for seed in 0..16 {
        let first = trace_for(seed);
        assert_eq!(
            first,
            trace_for(seed),
            "seed {seed} did not replay deterministically"
        );
        distinct.insert(first);
    }
    assert!(
        distinct.len() >= 2,
        "16 seeds explored only {} distinct interleavings",
        distinct.len()
    );
}

/// A shim mutex makes a non-atomic read-modify-write safe: the blocked
/// task hands the token back instead of running mid-critical-section.
#[test]
fn mutex_provides_exclusion() {
    check(|| {
        let c = Arc::new(sync::Mutex::new(0u64));
        let c2 = Arc::clone(&c);
        let c3 = Arc::clone(&c);
        let bump = |c: &sync::Mutex<u64>| {
            let mut g = c.lock();
            let v = *g;
            thread::yield_now();
            *g = v + 1;
        };
        let t1 = thread::spawn(move || bump(&c2));
        let t2 = thread::spawn(move || bump(&c3));
        t1.join();
        t2.join();
        assert_eq!(*c.lock(), 2);
    })
    .assert_ok();
}

/// Lock A then B in one task and B then A in another: some interleaving
/// deadlocks, and the checker must report it as such (not hang).
#[test]
fn abba_deadlock_is_detected() {
    let report = explore(
        Config {
            seeds: 256,
            ..Config::default()
        },
        || {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a1.lock();
                thread::yield_now();
                let _gb = b1.lock();
            });
            let t2 = thread::spawn(move || {
                let _gb = b2.lock();
                thread::yield_now();
                let _ga = a2.lock();
            });
            t1.join();
            t2.join();
        },
    );
    let failure = report.failure.expect("checker missed the ABBA deadlock");
    // The two lock-cycle tasks are blocked, plus the root task in join.
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock { blocked } if blocked.len() >= 2),
        "unexpected failure: {failure}"
    );
}

#[test]
fn join_returns_the_task_value() {
    check(|| {
        let t = thread::spawn(|| 6 * 7);
        assert_eq!(t.join(), Some(42));
    })
    .assert_ok();
}

#[test]
fn panic_messages_are_propagated_with_the_seed() {
    let report = check(|| {
        let t = thread::spawn(|| panic!("boom at the disco"));
        t.join();
    });
    let failure = report.failure.expect("panic not reported");
    assert_eq!(failure.seed, 0, "first seed already panics");
    match &failure.kind {
        FailureKind::Panic { task, message } => {
            assert_eq!(*task, 1, "the spawned task panicked, not the root");
            assert!(message.contains("boom at the disco"), "message: {message}");
        }
        other => panic!("expected a panic failure, got {other:?}"),
    }
    // A panicked task's join yields None (its value was never produced).
    let none_join = check(|| {
        let t = thread::spawn(|| -> u64 { panic!("no value") });
        assert_eq!(t.join(), None);
    });
    // The execution still fails overall (the panic is recorded), but the
    // root task observed None rather than hanging.
    assert!(none_join.failure.is_some());
}

/// The step budget turns accidental livelock into a reported failure.
#[test]
fn step_budget_exhaustion_is_reported() {
    let report = explore(
        Config {
            seeds: 1,
            max_steps: 500,
            ..Config::default()
        },
        || loop {
            thread::yield_now();
        },
    );
    let failure = report.failure.expect("spin loop not caught");
    assert!(matches!(
        failure.kind,
        FailureKind::StepBudgetExhausted { max_steps: 500 }
    ));
}
