//! Negative fixtures for the repo lint: every rule must fire on a
//! seeded violation, respect its escapes, and stay quiet on clean code.

use em_check::lint::{lint_repo, lint_source, Rule};

#[test]
fn every_rule_fires_on_a_seeded_violation() {
    let bad = r#"
use std::time::Instant;
pub fn lib_code(v: Option<u32>) -> u32 {
    let t = Instant::now();
    let mut rng = rand::thread_rng();
    if v.is_none() { std::process::exit(1); }
    let tag = "epoch_summary";
    let _ = std::fs::write("out.txt", tag);
    em_obs::op_stats("my_op", 1, 2, 3, 4, 5, 6);
    let _ = (t, rng.gen::<u8>());
    COUNTER.fetch_add(1, SOME_HIDDEN_ORDERING);
    std::thread::spawn(|| {});
    let p: *const u8 = std::ptr::null();
    let _ = unsafe { *p };
    let _ = LOCK.lock().unwrap();
    let _ = std::net::TcpListener::bind("127.0.0.1:0");
    v.unwrap()
}
"#;
    let violations = lint_source("crates/core/src/bad.rs", bad);
    for rule in Rule::ALL {
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "rule `{rule}` must fire on the fixture; got {violations:?}"
        );
    }
}

#[test]
fn multi_line_call_chains_are_caught() {
    // The old line scanner matched `.unwrap()` / `.expect(` as single-line
    // substrings; split across lines they sailed through. The token engine
    // sees the same token sequence either way.
    let split_unwrap = "
pub fn f(v: Option<u32>) -> u32 {
    v.
        unwrap()
}
";
    let v = lint_source("crates/core/src/x.rs", split_unwrap);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), (Rule::Unwrap, 3));

    let split_expect = "
pub fn f(v: Option<u32>) -> u32 {
    v
        .expect
        (\"msg\")
}
";
    let v = lint_source("crates/core/src/x.rs", split_expect);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::Unwrap);

    let split_lock = "
pub fn f(m: &std::sync::Mutex<u32>) -> u32 {
    *m
        .lock()
        .unwrap()
}
";
    let v = lint_source("crates/core/src/x.rs", split_lock);
    assert!(v.iter().any(|v| v.rule == Rule::LockUnwrap), "{v:?}");
}

#[test]
fn raw_strings_suppress_code_rules_but_still_carry_event_tags() {
    // Forbidden *code* patterns inside raw strings are data, not calls.
    let quiet = r##"
pub fn f() -> &'static str {
    r#"x.unwrap() and Instant::now() and std::thread::spawn"#
}
"##;
    assert!(lint_source("crates/core/src/x.rs", quiet).is_empty());

    // But a *quoted event tag* inside a raw string is still an ad-hoc tag
    // leaking out of the registry (e.g. a hand-built JSON template).
    let tag_in_raw = r##"
pub fn template() -> &'static str {
    r#"{"event":"epoch_summary"}"#
}
"##;
    let v = lint_source("crates/core/src/x.rs", tag_in_raw);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::EventName);
}

#[test]
fn lint_allow_above_a_multi_line_statement_covers_the_whole_statement() {
    // The escape rides the statement it precedes — all of it, even the
    // parts on later lines.
    let src = "
pub fn f(v: Option<u32>) -> u32 {
    // lint:allow(unwrap)
    v.
        unwrap()
}
";
    assert!(lint_source("crates/core/src/x.rs", src).is_empty());

    // ...but it ends with that statement: the next one is not covered.
    let leak = "
pub fn f(a: Option<u32>, b: Option<u32>) -> u32 {
    // lint:allow(unwrap)
    let x = a.
        unwrap();
    let y = b.unwrap();
    x + y
}
";
    let v = lint_source("crates/core/src/x.rs", leak);
    assert_eq!(v.len(), 1, "escape must not leak past its statement: {v:?}");
    assert_eq!(v[0].line, 6);
}

#[test]
fn em_lint_on_the_current_tree_is_clean() {
    // The acceptance pin: all twelve rules, zero findings on the repo
    // itself. A regression here means new code introduced a violation —
    // fix the code (or justify with an inline escape), don't touch this.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = lint_repo(&root).unwrap();
    assert!(
        violations.is_empty(),
        "em-lint must be clean on the tree:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_allow_suppresses_a_single_rule_on_its_line() {
    let src = "
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(unwrap)
}
pub fn g(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(clock)
}
";
    let violations = lint_source("crates/core/src/x.rs", src);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].line, 6, "only the mismatched escape fires");
}

#[test]
fn unwrap_is_fine_in_test_code_but_clocks_are_not() {
    let src = "
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = Some(1).unwrap();
        let t = std::time::Instant::now();
    }
}
";
    let violations = lint_source("crates/core/src/x.rs", src);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::Clock);

    let in_tests_dir = lint_source("crates/core/tests/t.rs", "fn f() { x.unwrap(); }");
    assert!(in_tests_dir.is_empty(), "{in_tests_dir:?}");
}

#[test]
fn allowlisted_crates_may_use_their_own_forbidden_thing() {
    let clock = "pub fn now() -> std::time::Instant { std::time::Instant::now() }";
    assert!(lint_source("crates/obs/src/lib.rs", clock).is_empty());
    assert!(lint_source("crates/bench/src/harness.rs", clock).is_empty());
    assert_eq!(lint_source("crates/core/src/pipeline.rs", clock).len(), 1);

    let exit = "pub fn die() { std::process::exit(2); }";
    assert!(lint_source("crates/cli/src/main.rs", exit).is_empty());
    assert_eq!(lint_source("crates/lm/src/encoder.rs", exit).len(), 1);
}

#[test]
fn strings_comments_and_macros_do_not_false_positive() {
    let src = r##"
//! Docs may say .unwrap() and Instant::now freely.
pub fn f() -> String {
    let msg = "please don't .unwrap() here";
    let raw = r#"SystemTime inside a raw string"#;
    /* thread_rng() in a block
       comment, spanning lines: process::exit(1) */
    format!("{msg}{raw}")
}
"##;
    assert!(lint_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn repo_scan_flags_a_seeded_bad_file_end_to_end() {
    // Build a throwaway mini-repo under the cargo-provided tmpdir with
    // one seeded violation, and check the same entry point ci.sh uses.
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-fixture");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .unwrap();
    std::fs::write(
        src_dir.join("good.rs"),
        "pub fn g(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n",
    )
    .unwrap();
    let violations = lint_repo(&root).unwrap();
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::Unwrap);
    assert!(violations[0].file.ends_with("crates/core/src/bad.rs"));
}
