//! Negative fixtures for the repo lint: every rule must fire on a
//! seeded violation, respect its escapes, and stay quiet on clean code.

use em_check::lint::{lint_repo, lint_source, Rule};

#[test]
fn every_rule_fires_on_a_seeded_violation() {
    let bad = r#"
use std::time::Instant;
pub fn lib_code(v: Option<u32>) -> u32 {
    let t = Instant::now();
    let mut rng = rand::thread_rng();
    if v.is_none() { std::process::exit(1); }
    let tag = "epoch_summary";
    let _ = std::fs::write("out.txt", tag);
    em_obs::op_stats("my_op", 1, 2, 3, 4, 5, 6);
    let _ = (t, rng.gen::<u8>());
    v.unwrap()
}
"#;
    let violations = lint_source("crates/core/src/bad.rs", bad);
    for rule in Rule::ALL {
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "rule `{rule}` must fire on the fixture; got {violations:?}"
        );
    }
}

#[test]
fn lint_allow_suppresses_a_single_rule_on_its_line() {
    let src = "
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(unwrap)
}
pub fn g(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(clock)
}
";
    let violations = lint_source("crates/core/src/x.rs", src);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].line, 6, "only the mismatched escape fires");
}

#[test]
fn unwrap_is_fine_in_test_code_but_clocks_are_not() {
    let src = "
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = Some(1).unwrap();
        let t = std::time::Instant::now();
    }
}
";
    let violations = lint_source("crates/core/src/x.rs", src);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::Clock);

    let in_tests_dir = lint_source("crates/core/tests/t.rs", "fn f() { x.unwrap(); }");
    assert!(in_tests_dir.is_empty(), "{in_tests_dir:?}");
}

#[test]
fn allowlisted_crates_may_use_their_own_forbidden_thing() {
    let clock = "pub fn now() -> std::time::Instant { std::time::Instant::now() }";
    assert!(lint_source("crates/obs/src/lib.rs", clock).is_empty());
    assert!(lint_source("crates/bench/src/harness.rs", clock).is_empty());
    assert_eq!(lint_source("crates/core/src/pipeline.rs", clock).len(), 1);

    let exit = "pub fn die() { std::process::exit(2); }";
    assert!(lint_source("crates/cli/src/main.rs", exit).is_empty());
    assert_eq!(lint_source("crates/lm/src/encoder.rs", exit).len(), 1);
}

#[test]
fn strings_comments_and_macros_do_not_false_positive() {
    let src = r##"
//! Docs may say .unwrap() and Instant::now freely.
pub fn f() -> String {
    let msg = "please don't .unwrap() here";
    let raw = r#"SystemTime inside a raw string"#;
    /* thread_rng() in a block
       comment, spanning lines: process::exit(1) */
    format!("{msg}{raw}")
}
"##;
    assert!(lint_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn repo_scan_flags_a_seeded_bad_file_end_to_end() {
    // Build a throwaway mini-repo under the cargo-provided tmpdir with
    // one seeded violation, and check the same entry point ci.sh uses.
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-fixture");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    )
    .unwrap();
    std::fs::write(
        src_dir.join("good.rs"),
        "pub fn g(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n",
    )
    .unwrap();
    let violations = lint_repo(&root).unwrap();
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::Unwrap);
    assert!(violations[0].file.ends_with("crates/core/src/bad.rs"));
}
