//! Property tests for the `em-check` lexer and the token-level lint.
//!
//! Two properties carry the rewrite:
//!
//! * **Totality + span discipline.** Over generated (and truncated)
//!   adversarial source — nested block comments, escaped quotes, raw
//!   strings with hashes — `lex` never panics, returns tokens in order
//!   with exact byte spans, leaves only whitespace between tokens, and
//!   reports correct 1-based lines.
//! * **Differential against the legacy scanner.** On sources built from
//!   fragments where the old line scanner was *correct* (its blind spots
//!   — multi-line chains, statement-scope escapes — are pinned
//!   separately in `lint_fixture.rs` as intentional differences), the
//!   token engine must report exactly the same `(line, rule)` findings
//!   for the original seven rules.

use em_check::lex::lex;
use em_check::lint::lint_source;
use em_check::lint_legacy::lint_source_legacy;
use proptest::collection;
use proptest::prelude::*;

/// Brace-balanced, newline-terminated fragments. Each is a construct the
/// legacy scanner handled correctly, so concatenations stay inside the
/// two engines' agreement zone while still exercising nested comments,
/// escaped quotes, raw strings with hashes, char/lifetime ambiguity, and
/// `#[cfg(test)]` regions.
const FRAGMENTS: &[&str] = &[
    "fn f() { let x = 1; }\n",
    "let s = \"no patterns here\";\n",
    "// comment with .unwrap() inside\n",
    "/* block .expect( comment */\n",
    "/* nested /* comments */ still comment .unwrap() */\n",
    "/* spans\n   multiple Instant::now\n   lines */\n",
    "let r = r#\"raw with # and \\ oddities\"#;\n",
    "let r2 = r##\"double-hash \"# inside\"##;\n",
    "let c = 'x';\n",
    "let esc = '\\n';\n",
    "let q = \"escaped \\\" quote .unwrap()\";\n",
    "x.unwrap();\n",
    "y.expect(\"msg\");\n",
    "let t = Instant::now();\n",
    "let g = thread_rng();\n",
    "std::process::exit(1);\n",
    "let _ = std::fs::write(\"p\", b\"x\");\n",
    "let _ = File::create(\"p\");\n",
    "let lt: &'static str = \"life\";\n",
    "for i in 0..n { sum += i; }\n",
    "#[cfg(test)]\nmod t {\n    fn u() { v.unwrap(); }\n}\n",
    "x.unwrap(); // lint:allow(unwrap)\n",
    "let tag = \"epoch_summary\";\n",
    "em_obs::op_stats(\"weird\", 1, 2, 3, 4, 5, 6);\n",
];

fn build_source(picks: &[usize]) -> String {
    picks.iter().map(|&i| FRAGMENTS[i]).collect()
}

/// `(line, rule name)` multiset of findings, order-normalized.
fn findings(violations: &[em_check::lint::Violation]) -> Vec<(usize, &'static str)> {
    let mut out: Vec<(usize, &'static str)> =
        violations.iter().map(|v| (v.line, v.rule.name())).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lexing_is_total_with_exact_spans(
        picks in collection::vec(0usize..FRAGMENTS.len(), 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let src = build_source(&picks);
        for candidate in [src.clone(), {
            // Truncation forges unterminated strings/comments mid-token;
            // the lexer must stay total on those too.
            let mut cut = (src.len() as f64 * cut_frac) as usize;
            while !src.is_char_boundary(cut) {
                cut -= 1;
            }
            src[..cut].to_string()
        }] {
            let tokens = lex(&candidate);
            let mut prev_end = 0usize;
            for t in &tokens {
                prop_assert!(
                    t.offset >= prev_end,
                    "overlapping tokens at offset {}", t.offset
                );
                let gap = &candidate[prev_end..t.offset];
                prop_assert!(
                    gap.chars().all(char::is_whitespace),
                    "non-whitespace between tokens: {gap:?}"
                );
                prop_assert_eq!(
                    &candidate[t.offset..t.offset + t.text.len()],
                    t.text
                );
                let line = 1 + candidate[..t.offset].matches('\n').count();
                prop_assert_eq!(t.line, line);
                prev_end = t.offset + t.text.len();
            }
            // Nothing but whitespace after the last token either.
            prop_assert!(candidate[prev_end..].chars().all(char::is_whitespace));
        }
    }

    #[test]
    fn token_engine_agrees_with_the_legacy_scanner(
        picks in collection::vec(0usize..FRAGMENTS.len(), 1..16),
    ) {
        let src = build_source(&picks);
        for rel in ["crates/core/src/x.rs", "crates/core/tests/t.rs"] {
            let new: Vec<_> = lint_source(rel, &src)
                .into_iter()
                .filter(|v| em_check::lint_legacy::LEGACY_RULES.contains(&v.rule))
                .collect();
            let old = lint_source_legacy(rel, &src);
            let (new_f, old_f) = (findings(&new), findings(&old));
            prop_assert!(
                new_f == old_f,
                "engines diverged on {rel}: new={new_f:?} old={old_f:?}\nsource:\n{src}"
            );
        }
    }
}

/// Handwritten pathological inputs: the lexer must survive every one.
#[test]
fn pathological_inputs_do_not_panic() {
    for src in [
        "",
        "\"",
        "'",
        "r#",
        "r#\"never closed",
        "r#####\"too many hashes\"##",
        "/* /* /* deep */ */",
        "\"ends in backslash \\",
        "'\\",
        "b\"bytes",
        "br##\"raw bytes",
        "0x",
        "1.",
        "ident\u{1F980}unicode",
        "#![cfg(test)",
        "// comment with no newline",
    ] {
        let _ = lex(src);
    }
}
