//! Property-based round-trip tests for the ingestion parsers: anything we
//! can format, we must parse back losslessly.

use em_data::ingest::{parse_csv, parse_json, records_from_csv};
use em_data::record::Value;
use proptest::prelude::*;

/// CSV-format a field with correct quoting.
fn csv_quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// JSON-format a string with correct escaping.
fn json_quote(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn field() -> impl Strategy<Value = String> {
    // Printable fields incl. the troublesome characters.
    "[a-zA-Z0-9 ,\"\n.$-]{0,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec(
        proptest::collection::vec(field(), 1..5), 1..6))
    {
        // All rows padded to the same width.
        let width = rows.iter().map(|r| r.len()).max().unwrap();
        let mut body = String::new();
        let mut expect = Vec::new();
        for row in &rows {
            let mut padded = row.clone();
            padded.resize(width, String::new());
            body.push_str(
                &padded.iter().map(|f| csv_quote(f)).collect::<Vec<_>>().join(","),
            );
            body.push('\n');
            expect.push(padded);
        }
        let parsed = parse_csv(&body).unwrap();
        // Fully-empty rows at the end are dropped by the parser; compare the
        // retained prefix.
        prop_assert_eq!(parsed.len(), expect.len());
        for (p, e) in parsed.iter().zip(&expect) {
            prop_assert_eq!(p, e);
        }
    }

    #[test]
    fn json_string_roundtrip(s in "[a-zA-Z0-9 \"\\\\\n\t]{0,20}") {
        let v = parse_json(&json_quote(&s)).unwrap();
        prop_assert_eq!(v, Value::Text(s));
    }

    #[test]
    fn json_number_roundtrip(n in -1e9f64..1e9) {
        let v = parse_json(&format!("{n}")).unwrap();
        match v {
            Value::Number(m) => prop_assert!((m - n).abs() <= n.abs() * 1e-12 + 1e-9),
            other => prop_assert!(false, "not a number: {other:?}"),
        }
    }

    #[test]
    fn json_object_roundtrip(
        keys in proptest::collection::vec("[a-z]{1,6}", 1..5),
        nums in proptest::collection::vec(-1000i32..1000, 1..5),
    ) {
        let n = keys.len().min(nums.len());
        // Unique keys: suffix with index.
        let body = (0..n)
            .map(|i| format!("{}: {}", json_quote(&format!("{}{}", keys[i], i)), nums[i]))
            .collect::<Vec<_>>()
            .join(", ");
        let v = parse_json(&format!("{{{body}}}")).unwrap();
        match v {
            Value::Nested(fields) => {
                prop_assert_eq!(fields.len(), n);
                for (i, (k, val)) in fields.iter().enumerate() {
                    prop_assert_eq!(k, &format!("{}{}", keys[i], i));
                    prop_assert_eq!(val, &Value::Number(nums[i] as f64));
                }
            }
            other => prop_assert!(false, "not an object: {other:?}"),
        }
    }

    #[test]
    fn csv_records_preserve_header_names(names in proptest::collection::vec("[a-z]{1,8}", 1..5)) {
        let unique: Vec<String> =
            names.iter().enumerate().map(|(i, n)| format!("{n}{i}")).collect();
        let header = unique.join(",");
        let row = vec!["x"; unique.len()].join(",");
        let rs = records_from_csv(&format!("{header}\n{row}\n")).unwrap();
        prop_assert_eq!(rs.len(), 1);
        for name in &unique {
            prop_assert!(rs[0].get(name).is_some(), "column {name} lost");
        }
    }
}
