//! Property-based tests of the GEM data substrate.

use em_data::metrics::Confusion;
use em_data::pair::{stratified_split, LabeledPair, Pair};
use em_data::record::{Format, Record, Value};
use em_data::serialize::serialize;
use em_data::summarize::TfIdf;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn flat_record() -> impl Strategy<Value = Record> {
    proptest::collection::vec((word(), word()), 1..6).prop_map(|attrs| {
        let mut r = Record::new();
        for (k, v) in attrs {
            r.push(k, Value::Text(v));
        }
        r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialization_is_total_and_deterministic(r in flat_record()) {
        let a = serialize(&r, Format::Relational);
        let b = serialize(&r, Format::Relational);
        prop_assert_eq!(&a, &b);
        // Grammar: equal numbers of [COL] and [VAL], one per attribute.
        let cols = a.matches("[COL]").count();
        let vals = a.matches("[VAL]").count();
        prop_assert_eq!(cols, r.arity());
        prop_assert_eq!(vals, r.arity());
    }

    #[test]
    fn serialization_value_tokens_survive(r in flat_record()) {
        let s = serialize(&r, Format::SemiStructured);
        for (_, v) in &r.attrs {
            prop_assert!(s.contains(&v.to_text()), "value lost: {}", v);
        }
    }

    #[test]
    fn summarize_respects_budget(
        docs in proptest::collection::vec(
            proptest::collection::vec(word(), 1..30), 2..6),
        budget in 1usize..20,
    ) {
        let texts: Vec<String> = docs.iter().map(|d| d.join(" ")).collect();
        let tfidf = TfIdf::fit(texts.iter().map(|s| s.as_str()));
        for t in &texts {
            let s = tfidf.summarize(t, budget);
            prop_assert!(s.split_whitespace().count() <= budget.max(t.split_whitespace().count().min(budget)));
            // Summary tokens all come from the original text.
            for tok in s.split_whitespace() {
                prop_assert!(t.split_whitespace().any(|w| w == tok));
            }
        }
    }

    #[test]
    fn metrics_are_bounded(pred in proptest::collection::vec(any::<bool>(), 1..50),
                           gold_bits in proptest::collection::vec(any::<bool>(), 1..50)) {
        let n = pred.len().min(gold_bits.len());
        let c = Confusion::from_pairs(&pred[..n], &gold_bits[..n]);
        for v in [c.precision(), c.recall(), c.f1(), c.tnr(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert_eq!(c.total(), n);
    }

    #[test]
    fn f1_is_between_precision_and_recall_extremes(
        pred in proptest::collection::vec(any::<bool>(), 4..40),
    ) {
        let gold: Vec<bool> = pred.iter().map(|&b| !b).collect();
        // Completely inverted predictions: zero TP, so F1 must be zero.
        let c = Confusion::from_pairs(&pred, &gold);
        prop_assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn stratified_split_partitions(want in 0usize..30, n_pos in 0usize..20, n_neg in 0usize..20) {
        let mut pool: Vec<LabeledPair> = (0..n_pos + n_neg)
            .map(|i| LabeledPair { pair: Pair { left: i, right: i }, label: i < n_pos })
            .collect();
        let total = pool.len();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let want = want.min(total);
        let (sel, rest) = stratified_split(&mut pool, want, &mut rng);
        prop_assert_eq!(sel.len(), want);
        prop_assert_eq!(sel.len() + rest.len(), total);
        // No duplicates across the partition.
        let mut seen: Vec<usize> = sel.iter().chain(&rest).map(|p| p.pair.left).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), total);
    }
}
