//! Structural invariants that every synthetic benchmark must uphold, at
//! both scales and across seeds — the contract the experiment harness
//! relies on.

use em_data::synth::{build, build_all, BenchmarkId, Scale};

#[test]
fn splits_are_disjoint_in_pairs() {
    for ds in build_all(Scale::Quick, 3) {
        let mut seen = std::collections::HashSet::new();
        for lp in ds
            .train
            .iter()
            .chain(&ds.valid)
            .chain(&ds.test)
            .chain(&ds.unlabeled)
        {
            assert!(
                seen.insert((lp.pair.left, lp.pair.right)),
                "{}: duplicate pair across splits ({}, {})",
                ds.name,
                lp.pair.left,
                lp.pair.right
            );
        }
    }
}

#[test]
fn all_pair_indices_are_in_range() {
    for ds in build_all(Scale::Quick, 4) {
        for lp in ds
            .train
            .iter()
            .chain(&ds.valid)
            .chain(&ds.test)
            .chain(&ds.unlabeled)
        {
            assert!(lp.pair.left < ds.left.len(), "{}: left index oob", ds.name);
            assert!(
                lp.pair.right < ds.right.len(),
                "{}: right index oob",
                ds.name
            );
        }
    }
}

#[test]
fn every_split_contains_both_classes() {
    for ds in build_all(Scale::Quick, 5) {
        for (name, split) in [
            ("train", &ds.train),
            ("valid", &ds.valid),
            ("test", &ds.test),
        ] {
            let pos = split.iter().filter(|lp| lp.label).count();
            assert!(pos > 0, "{}: {name} has no positives", ds.name);
            assert!(pos < split.len(), "{}: {name} has no negatives", ds.name);
        }
    }
}

#[test]
fn rates_match_table1_assignments() {
    for id in BenchmarkId::ALL {
        let ds = build(id, Scale::Quick, 6);
        let expected = match id {
            BenchmarkId::SemiHomo | BenchmarkId::SemiTextC => 0.05,
            _ => 0.10,
        };
        assert_eq!(ds.rate, expected, "{}", ds.name);
        // Train size ≈ rate × all labels (within rounding / minimums).
        let want = (ds.all_labeled() as f64 * expected).round();
        assert!(
            (ds.train.len() as f64 - want).abs() <= want * 0.25 + 4.0,
            "{}: train {} vs expected ≈{}",
            ds.name,
            ds.train.len(),
            want
        );
    }
}

#[test]
fn full_scale_upholds_the_same_invariants() {
    for id in [BenchmarkId::RelHeter, BenchmarkId::SemiTextW] {
        let ds = build(id, Scale::Full, 7);
        assert!(ds.all_labeled() > build(id, Scale::Quick, 7).all_labeled());
        let pos = ds.train.iter().filter(|lp| lp.label).count();
        assert!(
            pos > 0 && pos < ds.train.len(),
            "{}: degenerate full-scale train",
            ds.name
        );
    }
}

#[test]
fn different_benchmarks_use_different_universes() {
    // Same seed, different datasets must not share records.
    let a = build(BenchmarkId::SemiHomo, Scale::Quick, 8);
    let b = build(BenchmarkId::RelText, Scale::Quick, 8);
    // Both are citation-domain; still, independently generated universes.
    assert_ne!(
        a.left.records.first().map(|r| format!("{r:?}")),
        b.right.records.first().map(|r| format!("{r:?}")),
    );
}

#[test]
fn labeled_positive_pairs_reference_same_entity_views() {
    // Positives are (i, i) by construction before distractors; verify the
    // invariant the generators promise: a positive pair always has
    // left == right index (matching views of one entity).
    for ds in build_all(Scale::Quick, 9) {
        for lp in ds.train.iter().chain(&ds.test).filter(|lp| lp.label) {
            assert_eq!(
                lp.pair.left, lp.pair.right,
                "{}: positive pair is not an (i,i) view pair",
                ds.name
            );
        }
    }
}
