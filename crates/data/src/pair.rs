//! Candidate pairs, labeled examples, dataset splits, and the low-resource
//! sampling used throughout the paper's evaluation (§5.1, Table 1).

use crate::record::{Record, Table};
use rand::seq::SliceRandom;
use rand::Rng;

/// A candidate pair of row indices (left table, right table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pair {
    /// Row index into the left table.
    pub left: usize,
    /// Row index into the right table.
    pub right: usize,
}

/// A labeled candidate pair; `label == true` means the two records refer to
/// the same real-world entity (or satisfy the general binary relationship,
/// §3.1 "Label words set").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledPair {
    /// The candidate pair.
    pub pair: Pair,
    /// Gold label.
    pub label: bool,
}

/// A full GEM task: two tables plus labeled splits and an unlabeled pool.
#[derive(Debug, Clone)]
pub struct GemDataset {
    /// Benchmark name (Table 1).
    pub name: String,
    /// Application domain (Table 1).
    pub domain: String,
    /// The left entity table.
    pub left: Table,
    /// The right entity table.
    pub right: Table,
    /// Low-resource training set (`rate%` of all labels, Table 1 "Train").
    pub train: Vec<LabeledPair>,
    /// Validation split (model selection + threshold calibration).
    pub valid: Vec<LabeledPair>,
    /// Held-out test split.
    pub test: Vec<LabeledPair>,
    /// Unlabeled candidate pairs available to self-training (D_U). Gold
    /// labels are retained internally so pseudo-label quality (Table 5) can
    /// be measured, but matchers must not read them.
    pub unlabeled: Vec<LabeledPair>,
    /// The labeled-data rate used to build `train` (e.g. 0.10).
    pub rate: f64,
}

impl GemDataset {
    /// The record pair behind a candidate.
    pub fn records(&self, pair: Pair) -> (&Record, &Record) {
        (
            &self.left.records[pair.left],
            &self.right.records[pair.right],
        )
    }

    /// Total labeled examples across every split plus the unlabeled pool —
    /// the "All" column of Table 1.
    pub fn all_labeled(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len() + self.unlabeled.len()
    }

    /// The unlabeled pool as bare pairs (what a matcher is allowed to see).
    pub fn unlabeled_pairs(&self) -> Vec<Pair> {
        self.unlabeled.iter().map(|lp| lp.pair).collect()
    }

    /// Fraction of positive labels in the training split.
    pub fn train_pos_rate(&self) -> f64 {
        if self.train.is_empty() {
            return 0.0;
        }
        self.train.iter().filter(|p| p.label).count() as f64 / self.train.len() as f64
    }

    /// Re-derive a dataset at a different low-resource `rate`: the training
    /// pool is `train ∪ unlabeled`; `rate` of it (stratified) becomes the
    /// labeled train set and the rest returns to the unlabeled pool. Used by
    /// Figure 3 (rate sweep) and Table 3 (fixed budget).
    pub fn with_rate(&self, rate: f64, rng: &mut impl Rng) -> GemDataset {
        let mut pool: Vec<LabeledPair> = self
            .train
            .iter()
            .chain(self.unlabeled.iter())
            .copied()
            .collect();
        let want = ((pool.len() + self.valid.len() + self.test.len()) as f64 * rate)
            .round()
            .max(2.0) as usize;
        let want = want.min(pool.len());
        let (train, unlabeled) = stratified_split(&mut pool, want, rng);
        GemDataset {
            name: self.name.clone(),
            domain: self.domain.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            train,
            valid: self.valid.clone(),
            test: self.test.clone(),
            unlabeled,
            rate,
        }
    }

    /// A fixed labeled budget (Table 3 uses 80 for every dataset).
    pub fn with_budget(&self, budget: usize, rng: &mut impl Rng) -> GemDataset {
        let mut pool: Vec<LabeledPair> = self
            .train
            .iter()
            .chain(self.unlabeled.iter())
            .copied()
            .collect();
        let want = budget.min(pool.len());
        let (train, unlabeled) = stratified_split(&mut pool, want, rng);
        let total = self.all_labeled() as f64;
        GemDataset {
            name: self.name.clone(),
            domain: self.domain.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            train,
            valid: self.valid.clone(),
            test: self.test.clone(),
            unlabeled,
            rate: want as f64 / total,
        }
    }

    /// The sufficient-resource variant (Appendix A): every pooled label is
    /// available for training.
    pub fn sufficient(&self) -> GemDataset {
        let train: Vec<LabeledPair> = self
            .train
            .iter()
            .chain(self.unlabeled.iter())
            .copied()
            .collect();
        GemDataset {
            name: self.name.clone(),
            domain: self.domain.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            train,
            valid: self.valid.clone(),
            test: self.test.clone(),
            unlabeled: Vec::new(),
            rate: 1.0,
        }
    }
}

/// Draw `want` examples keeping the positive rate roughly intact; returns
/// (selected, remainder).
pub fn stratified_split(
    pool: &mut [LabeledPair],
    want: usize,
    rng: &mut impl Rng,
) -> (Vec<LabeledPair>, Vec<LabeledPair>) {
    pool.shuffle(rng);
    let (pos, neg): (Vec<LabeledPair>, Vec<LabeledPair>) =
        pool.iter().copied().partition(|p| p.label);
    let pos_rate = if pool.is_empty() {
        0.0
    } else {
        pos.len() as f64 / pool.len() as f64
    };
    let want_pos = ((want as f64 * pos_rate).round() as usize).clamp(
        usize::from(want > 1 && !pos.is_empty()),
        pos.len().min(want),
    );
    let want_neg = (want - want_pos).min(neg.len());
    let mut selected = Vec::with_capacity(want_pos + want_neg);
    selected.extend(pos.iter().take(want_pos));
    selected.extend(neg.iter().take(want_neg));
    let mut rest = Vec::with_capacity(pool.len() - selected.len());
    rest.extend(pos.iter().skip(want_pos));
    rest.extend(neg.iter().skip(want_neg));
    selected.shuffle(rng);
    rest.shuffle(rng);
    (selected, rest)
}

/// Split a labeled pool into train/valid/test with the given fractions.
pub fn three_way_split(
    mut pool: Vec<LabeledPair>,
    valid_frac: f64,
    test_frac: f64,
    rng: &mut impl Rng,
) -> (Vec<LabeledPair>, Vec<LabeledPair>, Vec<LabeledPair>) {
    pool.shuffle(rng);
    let n = pool.len();
    let n_valid = (n as f64 * valid_frac).round() as usize;
    let n_test = (n as f64 * test_frac).round() as usize;
    let test = pool.split_off(n - n_test);
    let valid = pool.split_off(pool.len() - n_valid);
    (pool, valid, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Format;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> GemDataset {
        let mut left = Table::new("l", Format::Relational);
        let mut right = Table::new("r", Format::Textual);
        for i in 0..30 {
            left.records
                .push(Record::new().with("id", crate::record::Value::Number(i as f64)));
            right.records.push(Record::textual(format!("record {i}")));
        }
        let mut labeled = Vec::new();
        for i in 0..30 {
            labeled.push(LabeledPair {
                pair: Pair { left: i, right: i },
                label: i % 4 == 0,
            });
        }
        let mut rng = StdRng::seed_from_u64(1);
        let (rest, valid, test) = three_way_split(labeled, 0.2, 0.2, &mut rng);
        let mut pool = rest;
        let (train, unlabeled) = stratified_split(&mut pool, 5, &mut rng);
        GemDataset {
            name: "toy".into(),
            domain: "test".into(),
            left,
            right,
            train,
            valid,
            test,
            unlabeled,
            rate: 0.1,
        }
    }

    #[test]
    fn splits_partition_the_pool() {
        let d = toy_dataset();
        assert_eq!(d.all_labeled(), 30);
        assert_eq!(d.train.len(), 5);
        assert!(!d.valid.is_empty());
        assert!(!d.test.is_empty());
    }

    #[test]
    fn stratified_split_keeps_positives() {
        let mut pool: Vec<LabeledPair> = (0..100)
            .map(|i| LabeledPair {
                pair: Pair { left: i, right: i },
                label: i < 25,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let (sel, rest) = stratified_split(&mut pool, 20, &mut rng);
        assert_eq!(sel.len(), 20);
        assert_eq!(rest.len(), 80);
        let pos = sel.iter().filter(|p| p.label).count();
        assert!((3..=8).contains(&pos), "positive rate drifted: {pos}/20");
    }

    #[test]
    fn with_rate_scales_train_size() {
        let d = toy_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let bigger = d.with_rate(0.5, &mut rng);
        assert!(bigger.train.len() > d.train.len());
        // Pool conservation: train + unlabeled is invariant.
        assert_eq!(
            bigger.train.len() + bigger.unlabeled.len(),
            d.train.len() + d.unlabeled.len()
        );
    }

    #[test]
    fn with_budget_caps_train() {
        let d = toy_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let b = d.with_budget(3, &mut rng);
        assert_eq!(b.train.len(), 3);
    }

    #[test]
    fn sufficient_uses_every_label() {
        let d = toy_dataset();
        let s = d.sufficient();
        assert!(s.unlabeled.is_empty());
        assert_eq!(s.train.len(), d.train.len() + d.unlabeled.len());
    }

    #[test]
    fn unlabeled_pairs_strip_labels() {
        let d = toy_dataset();
        assert_eq!(d.unlabeled_pairs().len(), d.unlabeled.len());
    }
}
