//! Evaluation metrics: precision / recall / F1 (paper §5.1) and
//! TPR / TNR for pseudo-label quality (paper §5.5, Table 5).

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against gold labels (`true` = match).
    pub fn from_pairs(pred: &[bool], gold: &[bool]) -> Self {
        assert_eq!(pred.len(), gold.len(), "prediction/label length mismatch");
        let mut c = Confusion::default();
        for (&p, &g) in pred.iter().zip(gold) {
            match (p, g) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total tallied pairs.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision = TP / (TP + FP); 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall = TP / (TP + FN); 0 when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// True-positive rate of a labeling: proportion of matched pairs that
    /// are correctly labeled, TP / (TP + FN) (paper §5.5).
    pub fn tpr(&self) -> f64 {
        self.recall()
    }

    /// True-negative rate: proportion of mismatched pairs correctly labeled,
    /// TN / (TN + FP) (paper §5.5).
    pub fn tnr(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// (TP + TN) / total.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Precision/recall/F1 triple as percentages, the unit the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrfScores {
    /// Precision, in percent.
    pub precision: f64,
    /// Recall, in percent.
    pub recall: f64,
    /// F1, in percent.
    pub f1: f64,
}

impl PrfScores {
    /// Percentages from confusion counts.
    pub fn from_confusion(c: &Confusion) -> Self {
        PrfScores {
            precision: 100.0 * c.precision(),
            recall: 100.0 * c.recall(),
            f1: 100.0 * c.f1(),
        }
    }

    /// Convenience: tally then convert.
    pub fn from_predictions(pred: &[bool], gold: &[bool]) -> Self {
        Self::from_confusion(&Confusion::from_pairs(pred, gold))
    }
}

impl std::fmt::Display for PrfScores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:5.1} R={:5.1} F={:5.1}",
            self.precision, self.recall, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let gold = [true, false, true, false];
        let c = Confusion::from_pairs(&gold, &gold);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 0,
                tn: 2,
                fn_: 0
            }
        );
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.tnr(), 1.0);
    }

    #[test]
    fn known_confusion_values() {
        // 3 TP, 1 FP, 4 TN, 2 FN
        let pred = [
            true, true, true, true, false, false, false, false, false, false,
        ];
        let gold = [
            true, true, true, false, false, false, false, false, true, true,
        ];
        let c = Confusion::from_pairs(&pred, &gold);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (3, 1, 4, 2));
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 0.6).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * 0.6 / 1.35;
        assert!((c.f1() - f1).abs() < 1e-12);
        assert!((c.tnr() - 0.8).abs() < 1e-12);
        assert!((c.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let c = Confusion::from_pairs(&[false, false], &[false, false]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.tnr(), 1.0);
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn prf_scores_are_percentages() {
        let s = PrfScores::from_predictions(&[true, true], &[true, false]);
        assert!((s.precision - 50.0).abs() < 1e-9);
        assert!((s.recall - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Confusion::from_pairs(&[true], &[true, false]);
    }
}
