//! The generalized-entity-matching data model: entity records of
//! relational, semi-structured or textual format (paper §2.1, Figure 1).

use std::fmt;

/// An attribute value. Relational tables hold flat `Text`/`Number` values;
/// semi-structured tables may additionally contain `List` and `Nested`
/// values; textual "tables" hold a single `Text` value per record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Free text.
    Text(String),
    /// A numeric value.
    Number(f64),
    /// A list of values (serialized by concatenation).
    List(Vec<Value>),
    /// A nested object (serialized recursively with tags).
    Nested(Vec<(String, Value)>),
    /// Missing value.
    Null,
}

impl Value {
    /// Render the value as the flat string used by serialization. Lists are
    /// concatenated with single spaces (paper §2.2: "we concatenate the
    /// elements in the list into one string").
    pub fn to_text(&self) -> String {
        match self {
            Value::Text(s) => s.clone(),
            Value::Number(n) => format_number(*n),
            Value::List(items) => items
                .iter()
                .map(Value::to_text)
                .collect::<Vec<_>>()
                .join(" "),
            Value::Nested(fields) => fields
                .iter()
                .map(|(k, v)| format!("{} {}", k, v.to_text()))
                .collect::<Vec<_>>()
                .join(" "),
            Value::Null => String::new(),
        }
    }

    /// True when the rendered value is entirely digits/punctuation (used to
    /// reproduce the numeric-heavy SEMI-HETER characteristics, §5.2).
    pub fn is_numeric(&self) -> bool {
        match self {
            Value::Number(_) => true,
            Value::Text(s) => {
                !s.is_empty() && s.chars().all(|c| c.is_ascii_digit() || "./- $".contains(c))
            }
            _ => false,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Format a float the way the source datasets do: integers lose the
/// fractional part.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

/// The storage format of a table (paper Table 1: REL / SEMI / TEXT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Flat attribute/value rows (REL).
    Relational,
    /// Possibly nested or list-valued attributes (SEMI).
    SemiStructured,
    /// Raw text, one attribute per record (TEXT).
    Textual,
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Format::Relational => write!(f, "REL"),
            Format::SemiStructured => write!(f, "SEMI"),
            Format::Textual => write!(f, "TEXT"),
        }
    }
}

/// One entity record: an ordered list of (attribute, value) pairs. A textual
/// record is a single attribute whose value is the whole text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    /// Ordered (attribute name, value) pairs.
    pub attrs: Vec<(String, Value)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Record { attrs: Vec::new() }
    }

    /// Builder-style attribute append.
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Self {
        self.attrs.push((name.into(), value));
        self
    }

    /// Append an attribute.
    pub fn push(&mut self, name: impl Into<String>, value: Value) {
        self.attrs.push((name.into(), value));
    }

    /// First value under `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Number of top-level attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// A purely textual record (one unnamed content attribute).
    pub fn textual(content: impl Into<String>) -> Self {
        Record::new().with("content", Value::Text(content.into()))
    }

    /// Fraction of attribute values that are numeric (Table 1 commentary:
    /// SEMI-HETER has 53% digit attribute values).
    pub fn numeric_fraction(&self) -> f64 {
        if self.attrs.is_empty() {
            return 0.0;
        }
        let numeric = self.attrs.iter().filter(|(_, v)| v.is_numeric()).count();
        numeric as f64 / self.attrs.len() as f64
    }
}

/// A collection of records sharing a format (schemas may still differ per
/// record in semi-structured tables).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (for display and file naming).
    pub name: String,
    /// Storage format shared by the records.
    pub format: Format,
    /// The rows.
    pub records: Vec<Record>,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, format: Format) -> Self {
        Table {
            name: name.into(),
            format,
            records: Vec::new(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean number of top-level attributes — the "#attr" column of Table 1.
    pub fn mean_arity(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let total: usize = self.records.iter().map(Record::arity).sum();
        total as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_values_concatenate() {
        let v = Value::List(vec![
            Value::Text("ronald fagin".into()),
            Value::Text("ravi kumar".into()),
        ]);
        assert_eq!(v.to_text(), "ronald fagin ravi kumar");
    }

    #[test]
    fn nested_values_flatten_with_keys() {
        let v = Value::Nested(vec![
            ("volume".into(), Value::Number(16.0)),
            ("issue".into(), Value::Number(1.0)),
        ]);
        assert_eq!(v.to_text(), "volume 16 issue 1");
    }

    #[test]
    fn numbers_format_like_source_data() {
        assert_eq!(Value::Number(2003.0).to_text(), "2003");
        assert_eq!(Value::Number(22.99).to_text(), "22.99");
    }

    #[test]
    fn numeric_detection() {
        assert!(Value::Number(5.0).is_numeric());
        assert!(Value::Text("9780672336072".into()).is_numeric());
        assert!(Value::Text("11/08/2012".into()).is_numeric());
        assert!(!Value::Text("sams".into()).is_numeric());
        assert!(!Value::Null.is_numeric());
    }

    #[test]
    fn record_accessors() {
        let r = Record::new()
            .with("title", Value::Text("efficient similarity search".into()))
            .with("year", Value::Number(2003.0));
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get("year"), Some(&Value::Number(2003.0)));
        assert_eq!(r.get("missing"), None);
        assert!((r.numeric_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table_mean_arity() {
        let mut t = Table::new("left", Format::Relational);
        t.records.push(Record::new().with("a", Value::Null));
        t.records
            .push(Record::new().with("a", Value::Null).with("b", Value::Null));
        assert!((t.mean_arity() - 1.5).abs() < 1e-9);
    }
}
