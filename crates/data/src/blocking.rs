//! Token-overlap blocking. The paper focuses on the matching step of the
//! classic EM workflow (§2.1) and takes candidate pairs as given; the
//! synthetic benchmark generators use this blocker to produce *hard*
//! negatives — candidate pairs that share tokens yet refer to different
//! entities — mirroring how the Machamp candidates were built.

use crate::record::{Format, Record};
use std::collections::{HashMap, HashSet};

/// Tokens of a record's attribute *values*, lowercased. Attribute names and
/// structural tags are excluded — they are schema, not content, and would
/// make every record of a table overlap with every other.
pub fn record_tokens(record: &Record, format: Format) -> HashSet<String> {
    let _ = format; // all formats tokenize values the same way
    let mut out = HashSet::new();
    for (_, v) in &record.attrs {
        for t in v.to_text().split_whitespace() {
            out.insert(t.to_lowercase());
        }
    }
    out
}

/// Jaccard similarity between two token sets.
pub fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// An inverted token index over one side of a dataset.
pub struct TokenIndex {
    postings: HashMap<String, Vec<usize>>,
    tokens: Vec<HashSet<String>>,
}

// (fields private; constructor below)

impl TokenIndex {
    /// Index the token sets of every record.
    pub fn build(records: &[Record], format: Format) -> Self {
        let mut postings: HashMap<String, Vec<usize>> = HashMap::new();
        let mut tokens = Vec::with_capacity(records.len());
        for (i, r) in records.iter().enumerate() {
            let toks = record_tokens(r, format);
            for t in &toks {
                postings.entry(t.clone()).or_default().push(i);
            }
            tokens.push(toks);
        }
        TokenIndex { postings, tokens }
    }

    /// Indices of records sharing at least `min_overlap` tokens with the
    /// query set, ranked by overlap count (descending), excluding `skip`.
    pub fn candidates(
        &self,
        query: &HashSet<String>,
        min_overlap: usize,
        skip: Option<usize>,
    ) -> Vec<(usize, usize)> {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for t in query {
            if let Some(ids) = self.postings.get(t) {
                for &i in ids {
                    if Some(i) != skip {
                        *counts.entry(i).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut out: Vec<(usize, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_overlap)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The indexed token set of record `i`.
    pub fn tokens_of(&self, i: usize) -> &HashSet<String> {
        &self.tokens[i]
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Quality report of a blocking configuration against gold matches
/// (the paper focuses on matching and cites Thirumuruganathan et al. for
/// blocking; this evaluator closes the loop for end-to-end users).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingReport {
    /// Fraction of gold matched pairs surviving blocking.
    pub recall: f64,
    /// Total candidate pairs emitted.
    pub candidates: usize,
    /// 1 − candidates / (|L|·|R|): how much of the quadratic space blocking
    /// removed.
    pub reduction_ratio: f64,
}

/// Evaluate top-`k` token-overlap blocking on a dataset: how many of the
/// gold matches (across every split) survive, and at what candidate cost.
pub fn evaluate_blocking(
    ds: &crate::pair::GemDataset,
    k: usize,
    min_overlap: usize,
) -> BlockingReport {
    let _span = em_obs::span_with(em_obs::names::SPAN_BLOCK, ds.name.clone());
    let index = TokenIndex::build(&ds.right.records, ds.right.format);
    let mut survivors: HashSet<(usize, usize)> = HashSet::new();
    let mut candidates = 0usize;
    for (i, r) in ds.left.records.iter().enumerate() {
        let q = record_tokens(r, ds.left.format);
        for (j, _) in index.candidates(&q, min_overlap, None).into_iter().take(k) {
            survivors.insert((i, j));
            candidates += 1;
        }
    }
    em_obs::block(candidates as u64);
    let gold: Vec<(usize, usize)> = ds
        .train
        .iter()
        .chain(&ds.valid)
        .chain(&ds.test)
        .chain(&ds.unlabeled)
        .filter(|lp| lp.label)
        .map(|lp| (lp.pair.left, lp.pair.right))
        .collect();
    let hit = gold.iter().filter(|p| survivors.contains(p)).count();
    let recall = if gold.is_empty() {
        1.0
    } else {
        hit as f64 / gold.len() as f64
    };
    let total = (ds.left.records.len() * ds.right.records.len()).max(1);
    BlockingReport {
        recall,
        candidates,
        reduction_ratio: 1.0 - candidates as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn rec(text: &str) -> Record {
        Record::new().with("name", Value::Text(text.into()))
    }

    #[test]
    fn tokens_exclude_tags_and_lowercase() {
        let t = record_tokens(&rec("Blue Bottle Coffee"), Format::Relational);
        assert!(t.contains("blue"));
        assert!(t.contains("coffee"));
        assert!(!t.contains("[COL]"));
        assert!(!t.contains("[col]"));
    }

    #[test]
    fn jaccard_bounds() {
        let a: HashSet<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let b: HashSet<String> = ["y", "z"].iter().map(|s| s.to_string()).collect();
        let j = jaccard(&a, &b);
        assert!(j > 0.0 && j < 1.0);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&HashSet::new(), &HashSet::new()), 0.0);
    }

    #[test]
    fn index_finds_overlapping_records() {
        let records = vec![rec("alpha beta"), rec("beta gamma"), rec("delta epsilon")];
        let idx = TokenIndex::build(&records, Format::Relational);
        let query = record_tokens(&rec("beta zeta"), Format::Relational);
        let cands = idx.candidates(&query, 1, None);
        let ids: Vec<usize> = cands.iter().map(|&(i, _)| i).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2));
    }

    #[test]
    fn skip_excludes_self() {
        let records = vec![rec("same tokens"), rec("same tokens")];
        let idx = TokenIndex::build(&records, Format::Relational);
        let cands = idx.candidates(idx.tokens_of(0), 1, Some(0));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].0, 1);
    }

    #[test]
    fn blocking_report_on_a_benchmark() {
        let ds = crate::synth::build(
            crate::synth::BenchmarkId::RelHeter,
            crate::synth::Scale::Quick,
            7,
        );
        let r = evaluate_blocking(&ds, 10, 2);
        // Positives share many tokens by construction: a top-10 blocker
        // must keep most of them while pruning most of the space.
        assert!(r.recall > 0.8, "blocking recall too low: {}", r.recall);
        assert!(
            r.reduction_ratio > 0.8,
            "no reduction: {}",
            r.reduction_ratio
        );
        assert!(r.candidates > 0);
    }

    #[test]
    fn wider_k_never_reduces_recall() {
        let ds = crate::synth::build(
            crate::synth::BenchmarkId::SemiHeter,
            crate::synth::Scale::Quick,
            8,
        );
        let narrow = evaluate_blocking(&ds, 2, 2);
        let wide = evaluate_blocking(&ds, 20, 2);
        assert!(wide.recall >= narrow.recall);
        assert!(wide.candidates >= narrow.candidates);
    }

    #[test]
    fn ranking_is_by_overlap() {
        let records = vec![rec("a b c d"), rec("a b"), rec("a")];
        let idx = TokenIndex::build(&records, Format::Relational);
        let query = record_tokens(&rec("a b c d"), Format::Relational);
        let cands = idx.candidates(&query, 1, None);
        assert_eq!(cands[0].0, 0);
        assert!(cands[0].1 > cands[1].1);
    }
}
