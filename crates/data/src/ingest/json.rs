//! A minimal JSON parser producing [`Value`](crate::record::Value) trees —
//! enough to ingest semi-structured records (objects, arrays, strings,
//! numbers, booleans, null) without external dependencies.
//!
//! Intentionally small: no streaming, no escapes beyond the JSON standard
//! set, numbers parsed as `f64`. Errors carry byte offsets.

use crate::record::{Record, Value};

/// A parse error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Text(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Text("true".into())),
            Some(b'f') => self.parse_keyword("false", Value::Text("false".into())),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Nested(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Nested(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::List(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            // \uXXXX escape.
                            let start = self.pos + 1;
                            let end = start + 4;
                            if end > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[start..end])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        offset: self.pos,
                        message: "invalid UTF-8".into(),
                    })?;
                    let Some(c) = s.chars().next() else {
                        return self.err("unterminated string");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }
}

/// Parse one JSON document into a [`Value`].
pub fn parse_json(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content");
    }
    Ok(v)
}

/// Parse a top-level JSON object into a [`Record`] (one attribute per key).
pub fn record_from_json(input: &str) -> Result<Record, JsonError> {
    match parse_json(input)? {
        Value::Nested(fields) => Ok(Record { attrs: fields }),
        _ => Err(JsonError {
            offset: 0,
            message: "top-level value is not an object".into(),
        }),
    }
}

/// Parse a JSON-Lines file body: one record per non-empty line.
pub fn records_from_jsonl(input: &str) -> Result<Vec<Record>, JsonError> {
    input
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(record_from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_figure_example() {
        let json = r#"{
            "ID": "bn_2841",
            "Title": "Sams Teach Yourself SQL in 10 Minutes",
            "ISBN": 9780672336072,
            "Pages": 288.0,
            "price": "$22.99"
        }"#;
        let r = record_from_json(json).unwrap();
        assert_eq!(r.arity(), 5);
        assert_eq!(r.get("ISBN"), Some(&Value::Number(9780672336072.0)));
        assert_eq!(r.get("price"), Some(&Value::Text("$22.99".into())));
    }

    #[test]
    fn parses_nested_and_lists() {
        let json = r#"{"authors": ["a b", "c d"], "pub": {"venue": "vldb", "vol": 16}}"#;
        let r = record_from_json(json).unwrap();
        match r.get("authors") {
            Some(Value::List(items)) => assert_eq!(items.len(), 2),
            other => panic!("authors not a list: {other:?}"),
        }
        match r.get("pub") {
            Some(Value::Nested(fields)) => assert_eq!(fields.len(), 2),
            other => panic!("pub not nested: {other:?}"),
        }
    }

    #[test]
    fn parses_scalars_and_keywords() {
        assert_eq!(parse_json("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse_json("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json("true").unwrap(), Value::Text("true".into()));
        assert_eq!(parse_json("\"hi\"").unwrap(), Value::Text("hi".into()));
    }

    #[test]
    fn handles_escapes() {
        let v = parse_json(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v, Value::Text("a\"b\\c\ndA".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"k\" 1}", "1 2", "{]}"] {
            assert!(parse_json(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = parse_json("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn jsonl_parses_multiple_records() {
        let body = "{\"a\": 1}\n\n{\"a\": 2}\n";
        let rs = records_from_jsonl(body).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].get("a"), Some(&Value::Number(2.0)));
    }
}
