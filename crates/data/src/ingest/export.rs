//! Export of tables and datasets — the inverse of ingestion. Relational
//! tables become CSV (with a unified header across records), semi-structured
//! tables become JSON-Lines, textual tables become plain text; labeled
//! splits export as `left,right,label` CSV.

use crate::pair::LabeledPair;
use crate::record::{Format, Record, Table, Value};

/// Render a value as JSON.
pub fn value_to_json(v: &Value) -> String {
    match v {
        Value::Text(s) => json_string(s),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::List(items) => {
            let inner: Vec<String> = items.iter().map(value_to_json).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Nested(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}: {}", json_string(k), value_to_json(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        Value::Null => "null".to_string(),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One record as a JSON object line.
pub fn record_to_json(r: &Record) -> String {
    let fields: Vec<String> = r
        .attrs
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), value_to_json(v)))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn csv_quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Export a table body in its natural format: CSV for relational (header =
/// union of attribute names in first-seen order), JSONL for semi-structured,
/// plain lines for textual.
pub fn table_to_string(t: &Table) -> String {
    match t.format {
        Format::Relational => {
            let mut header: Vec<String> = Vec::new();
            for r in &t.records {
                for (k, _) in &r.attrs {
                    if !header.contains(k) {
                        header.push(k.clone());
                    }
                }
            }
            let mut out = header
                .iter()
                .map(|h| csv_quote(h))
                .collect::<Vec<_>>()
                .join(",");
            out.push('\n');
            for r in &t.records {
                let row: Vec<String> = header
                    .iter()
                    .map(|h| {
                        r.get(h)
                            .map(|v| csv_quote(&v.to_text()))
                            .unwrap_or_default()
                    })
                    .collect();
                out.push_str(&row.join(","));
                out.push('\n');
            }
            out
        }
        Format::SemiStructured => {
            let mut out = String::new();
            for r in &t.records {
                out.push_str(&record_to_json(r));
                out.push('\n');
            }
            out
        }
        Format::Textual => {
            let mut out = String::new();
            for r in &t.records {
                out.push_str(
                    &r.attrs
                        .iter()
                        .map(|(_, v)| v.to_text())
                        .collect::<Vec<_>>()
                        .join(" "),
                );
                out.push('\n');
            }
            out
        }
    }
}

/// Export labeled pairs as `left,right,label` CSV.
pub fn labels_to_csv(pairs: &[LabeledPair]) -> String {
    let mut out = String::from("left,right,label\n");
    for lp in pairs {
        out.push_str(&format!(
            "{},{},{}\n",
            lp.pair.left,
            lp.pair.right,
            u8::from(lp.label)
        ));
    }
    out
}

/// The natural file extension for a table's format.
pub fn extension_for(format: Format) -> &'static str {
    match format {
        Format::Relational => "csv",
        Format::SemiStructured => "jsonl",
        Format::Textual => "txt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{records_from_csv, records_from_jsonl};
    use crate::pair::Pair;

    #[test]
    fn relational_roundtrip_through_csv() {
        let mut t = Table::new("x", Format::Relational);
        t.records.push(
            Record::new()
                .with("name", Value::Text("blue, cafe".into()))
                .with("year", Value::Number(2003.0)),
        );
        t.records.push(
            Record::new()
                .with("name", Value::Text("he said \"hi\"".into()))
                .with("year", Value::Number(1999.0)),
        );
        let body = table_to_string(&t);
        let parsed = records_from_csv(&body).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0].get("name"),
            Some(&Value::Text("blue, cafe".into()))
        );
        assert_eq!(parsed[1].get("year"), Some(&Value::Number(1999.0)));
    }

    #[test]
    fn semi_roundtrip_through_jsonl() {
        let mut t = Table::new("x", Format::SemiStructured);
        t.records.push(
            Record::new()
                .with("title", Value::Text("a \"quoted\" title".into()))
                .with("authors", Value::List(vec![Value::Text("x y".into())]))
                .with(
                    "pub",
                    Value::Nested(vec![("venue".into(), Value::Text("vldb".into()))]),
                ),
        );
        let body = table_to_string(&t);
        let parsed = records_from_jsonl(&body).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            parsed[0].get("title"),
            Some(&Value::Text("a \"quoted\" title".into()))
        );
        match parsed[0].get("pub") {
            Some(Value::Nested(f)) => assert_eq!(f[0].0, "venue"),
            other => panic!("nested lost: {other:?}"),
        }
    }

    #[test]
    fn textual_export_is_one_line_per_record() {
        let mut t = Table::new("x", Format::Textual);
        t.records.push(Record::textual("first doc"));
        t.records.push(Record::textual("second doc"));
        assert_eq!(table_to_string(&t), "first doc\nsecond doc\n");
    }

    #[test]
    fn labels_csv_shape() {
        let pairs = vec![
            LabeledPair {
                pair: Pair { left: 0, right: 3 },
                label: true,
            },
            LabeledPair {
                pair: Pair { left: 1, right: 2 },
                label: false,
            },
        ];
        assert_eq!(labels_to_csv(&pairs), "left,right,label\n0,3,1\n1,2,0\n");
    }

    #[test]
    fn benchmark_exports_and_reimports() {
        let ds = crate::synth::build(
            crate::synth::BenchmarkId::SemiHomo,
            crate::synth::Scale::Quick,
            12,
        );
        let left_body = table_to_string(&ds.left);
        let reparsed = records_from_jsonl(&left_body).unwrap();
        assert_eq!(reparsed.len(), ds.left.len());
    }
}
