//! A small RFC-4180-style CSV reader: quoted fields, embedded commas,
//! escaped quotes (`""`), CRLF/LF line endings. The first row is the
//! header; each subsequent row becomes a [`Record`](crate::record::Record)
//! with one attribute per column. Numeric-looking fields become
//! [`Value::Number`](crate::record::Value).

use crate::record::{Record, Value};

/// A CSV parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Split a CSV body into rows of fields.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut field = String::new();
    let mut row: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(CsvError {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {} // swallow; LF follows
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    // Drop fully-empty trailing rows.
    rows.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(rows)
}

/// Interpret a field: numeric-looking strings become numbers, empty fields
/// become Null.
fn field_value(s: &str) -> Value {
    let t = s.trim();
    if t.is_empty() {
        return Value::Null;
    }
    if let Ok(n) = t.parse::<f64>() {
        if n.is_finite() {
            return Value::Number(n);
        }
    }
    Value::Text(t.to_string())
}

/// Parse a CSV body (header + rows) into records.
pub fn records_from_csv(input: &str) -> Result<Vec<Record>, CsvError> {
    let rows = parse_csv(input)?;
    let Some((header, body)) = rows.split_first() else {
        return Ok(Vec::new());
    };
    let mut out = Vec::with_capacity(body.len());
    for (k, row) in body.iter().enumerate() {
        if row.len() != header.len() {
            return Err(CsvError {
                line: k + 2,
                message: format!("expected {} fields, found {}", header.len(), row.len()),
            });
        }
        let mut r = Record::new();
        for (name, value) in header.iter().zip(row) {
            r.push(name.clone(), field_value(value));
        }
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_table() {
        let rs = records_from_csv("name,city,year\nblue cafe,boston,2003\nred diner,austin,1999\n")
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].get("name"), Some(&Value::Text("blue cafe".into())));
        assert_eq!(rs[1].get("year"), Some(&Value::Number(1999.0)));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let rs = records_from_csv("a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rs[0].get("a"), Some(&Value::Text("x, y".into())));
        assert_eq!(rs[0].get("b"), Some(&Value::Text("he said \"hi\"".into())));
    }

    #[test]
    fn multiline_quoted_field() {
        let rs = records_from_csv("a,b\n\"line1\nline2\",2\n").unwrap();
        assert_eq!(rs[0].get("a"), Some(&Value::Text("line1\nline2".into())));
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let rs = records_from_csv("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].get("b"), Some(&Value::Number(4.0)));
    }

    #[test]
    fn empty_fields_become_null() {
        let rs = records_from_csv("a,b\n,x\n").unwrap();
        assert_eq!(rs[0].get("a"), Some(&Value::Null));
    }

    #[test]
    fn ragged_rows_are_rejected_with_line_number() {
        let e = records_from_csv("a,b\n1,2\n1,2,3\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        assert!(records_from_csv("a\n\"open\n").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(records_from_csv("").unwrap().is_empty());
    }
}
