//! Ingestion of real user data into GEM tables: CSV (relational),
//! JSON-Lines (semi-structured) and plain text (one record per line).
//! No external parser dependencies — both readers live here.

pub mod csv;
pub mod export;
pub mod json;

use crate::record::{Format, Record, Table};

pub use csv::{parse_csv, records_from_csv, CsvError};
pub use export::{extension_for, labels_to_csv, record_to_json, table_to_string};
pub use json::{parse_json, record_from_json, records_from_jsonl, JsonError};

/// An ingestion error from any of the supported formats.
#[derive(Debug)]
pub enum IngestError {
    /// CSV parsing failed.
    Csv(CsvError),
    /// JSON parsing failed.
    Json(JsonError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Csv(e) => write!(f, "{e}"),
            IngestError::Json(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Build a relational table from a CSV body.
///
/// ```
/// let t = em_data::ingest::table_from_csv("shops", "name,city\nblue cafe,boston\n").unwrap();
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.format, em_data::Format::Relational);
/// ```
pub fn table_from_csv(name: impl Into<String>, body: &str) -> Result<Table, IngestError> {
    let records = records_from_csv(body).map_err(IngestError::Csv)?;
    Ok(Table {
        name: name.into(),
        format: Format::Relational,
        records,
    })
}

/// Build a semi-structured table from a JSON-Lines body.
pub fn table_from_jsonl(name: impl Into<String>, body: &str) -> Result<Table, IngestError> {
    let records = records_from_jsonl(body).map_err(IngestError::Json)?;
    Ok(Table {
        name: name.into(),
        format: Format::SemiStructured,
        records,
    })
}

/// Build a textual table: one record per non-empty line.
pub fn table_from_text(name: impl Into<String>, body: &str) -> Table {
    let records = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(Record::textual)
        .collect();
    Table {
        name: name.into(),
        format: Format::Textual,
        records,
    }
}

/// Pick the loader from a file extension (`csv`, `jsonl`/`ndjson`,
/// everything else = text).
pub fn table_from_extension(
    name: impl Into<String>,
    extension: &str,
    body: &str,
) -> Result<Table, IngestError> {
    match extension.to_ascii_lowercase().as_str() {
        "csv" => table_from_csv(name, body),
        "jsonl" | "ndjson" | "json" => table_from_jsonl(name, body),
        _ => Ok(table_from_text(name, body)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_table_is_relational() {
        let t = table_from_csv("left", "a,b\n1,x\n").unwrap();
        assert_eq!(t.format, Format::Relational);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn jsonl_table_is_semi_structured() {
        let t = table_from_jsonl("right", "{\"a\": [1, 2]}\n").unwrap();
        assert_eq!(t.format, Format::SemiStructured);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn text_table_is_textual() {
        let t = table_from_text("docs", "first record\n\nsecond record\n");
        assert_eq!(t.format, Format::Textual);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn extension_dispatch() {
        assert_eq!(
            table_from_extension("x", "CSV", "a\n1\n").unwrap().format,
            Format::Relational
        );
        assert_eq!(
            table_from_extension("x", "jsonl", "{\"a\":1}")
                .unwrap()
                .format,
            Format::SemiStructured
        );
        assert_eq!(
            table_from_extension("x", "txt", "hello").unwrap().format,
            Format::Textual
        );
    }
}
