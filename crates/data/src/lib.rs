//! # em-data
//!
//! The generalized entity matching (GEM) data substrate for the PromptEM
//! reproduction:
//!
//! * [`record`] — entity records of relational / semi-structured / textual
//!   format (paper §2.1);
//! * [`serialize`] — the `[COL]`/`[VAL]` serialization scheme extended to
//!   GEM (paper §2.2);
//! * [`summarize`] — TF-IDF summarization of long entries (Appendix F);
//! * [`pair`] — candidate pairs, splits and low-resource sampling (Table 1);
//! * [`blocking`] — token-overlap candidate generation used by the dataset
//!   builders to create hard negatives;
//! * [`metrics`] — precision/recall/F1 and TPR/TNR;
//! * [`synth`] — seeded generators replicating the structure of the eight
//!   benchmarks.

#![warn(missing_docs)]

pub mod blocking;
pub mod corpus;
pub mod ingest;
pub mod metrics;
pub mod pair;
pub mod record;
pub mod serialize;
pub mod summarize;
pub mod synth;

pub use metrics::{Confusion, PrfScores};
pub use pair::{GemDataset, LabeledPair, Pair};
pub use record::{Format, Record, Table, Value};
pub use serialize::serialize;
pub use synth::{BenchmarkId, Scale};
