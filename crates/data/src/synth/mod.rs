//! Synthetic benchmark construction: canonical entity universes, noise
//! channels, and the eight dataset builders replicating Table 1.

pub mod benchmarks;
pub mod noise;
pub mod universe;
pub mod vocab;

pub use benchmarks::{build, build_all, BenchmarkId, Scale};
pub use noise::NoiseCfg;
pub use universe::Domain;
