//! Canonical entity universes. Each benchmark derives its two table views
//! (with different formats/schemas/noise) from one shared universe of
//! ground-truth entities, so match labels are exact by construction.

use super::vocab;
use crate::record::{Record, Value};
use rand::Rng;

/// The application domain of a benchmark (Table 1 "Domain" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Restaurants (REL-HETER).
    Restaurant,
    /// Paper citations (SEMI-HOMO, REL-TEXT).
    Citation,
    /// Books (SEMI-HETER).
    Book,
    /// Movies (SEMI-REL).
    Movie,
    /// Electronics products (SEMI-TEXT-c/w).
    Product,
    /// Points of interest (GEO-HETER).
    GeoSpatial,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Domain::Restaurant => "restaurant",
            Domain::Citation => "citation",
            Domain::Book => "book",
            Domain::Movie => "movie",
            Domain::Product => "product",
            Domain::GeoSpatial => "geo-spatial",
        };
        write!(f, "{s}")
    }
}

/// Generate `n` canonical entities for a domain. Every entity is a full
/// [`Record`] holding all attributes any view might project.
pub fn generate(domain: Domain, n: usize, rng: &mut impl Rng) -> Vec<Record> {
    (0..n).map(|_| one(domain, rng)).collect()
}

fn one(domain: Domain, rng: &mut impl Rng) -> Record {
    match domain {
        Domain::Restaurant => restaurant(rng),
        Domain::Citation => citation(rng),
        Domain::Book => book(rng),
        Domain::Movie => movie(rng),
        Domain::Product => product(rng),
        Domain::GeoSpatial => poi(rng),
    }
}

fn text(s: String) -> Value {
    Value::Text(s)
}

/// Derive a *sibling* of an entity: a different real-world entity that
/// shares its headline attributes (name/title/brand) but differs in the
/// discriminative details. Siblings are the near-duplicate hard negatives
/// the paper's error analysis (Appendix C) revolves around — same book
/// title, different ISBN/date; franchise restaurants; movie remakes;
/// product variants; preprint-vs-published citations; chain POIs.
pub fn sibling(domain: Domain, entity: &Record, rng: &mut impl Rng) -> Record {
    let mut s = entity.clone();
    let replace = |s: &mut Record, keys: &[&str], rng: &mut dyn FnMut(&str) -> Value| {
        for (k, v) in s.attrs.iter_mut() {
            if keys.contains(&k.as_str()) {
                *v = rng(k);
            }
        }
    };
    match domain {
        Domain::Restaurant => {
            // A franchise location: same name and cuisine, new everything else.
            replace(&mut s, &["address", "phone"], &mut |k| match k {
                "address" => text(vocab::street_address(rng)),
                "city" => text(vocab::pick(rng, vocab::CITIES).to_string()),
                "phone" => text(vocab::phone(rng)),
                "price" => text(format!("${}", rng.gen_range(8..80))),
                _ => Value::Number((rng.gen_range(20..50) as f64) / 10.0),
            });
        }
        Domain::Citation => {
            // The "other version" of the paper: same title and authors,
            // different venue/year/pages/volume.
            replace(&mut s, &["year", "pages", "number"], &mut |k| match k {
                "venue" => text(vocab::pick(rng, vocab::VENUES).to_string()),
                "year" => Value::Number(rng.gen_range(1998..2023) as f64),
                "pages" => {
                    let start = rng.gen_range(1..3000);
                    text(format!("{}-{}", start, start + rng.gen_range(8..25)))
                }
                "volume" => Value::Number(rng.gen_range(1..40) as f64),
                _ => Value::Number(rng.gen_range(1..13) as f64),
            });
        }
        Domain::Book => {
            // Another edition: same title/author/publisher, new identifiers.
            replace(
                &mut s,
                &["isbn", "publication_date", "edition"],
                &mut |k| match k {
                    "isbn" => text(vocab::isbn(rng)),
                    "publication_date" => text(vocab::date(rng)),
                    "edition" => Value::Number(rng.gen_range(1..9) as f64),
                    "price" => text(format!(
                        "${}.{:02}",
                        rng.gen_range(9..90),
                        rng.gen_range(0..100)
                    )),
                    _ => Value::Number(rng.gen_range(120..900) as f64),
                },
            );
        }
        Domain::Movie => {
            // A remake: same title and genre, different crew and year.
            replace(&mut s, &["director", "year", "votes"], &mut |k| match k {
                "director" | "writer" => text(vocab::person_name(rng)),
                "year" => Value::Number(rng.gen_range(1970..2023) as f64),
                "duration" => Value::Number(rng.gen_range(80..190) as f64),
                "studio" => text(vocab::pseudo_word(rng, 3)),
                _ => Value::Number(rng.gen_range(100..200_000) as f64),
            });
        }
        Domain::Product => {
            // A model variant: same brand/model/category, different specs.
            replace(&mut s, &["storage", "price", "sku"], &mut |k| match k {
                "storage" => Value::Number([64.0, 128.0, 256.0, 512.0][rng.gen_range(0..4)]),
                "price" => Value::Number(rng.gen_range(99..1999) as f64),
                "sku" => text(format!("sku{:07}", rng.gen_range(0..10_000_000))),
                "screen_size" => Value::Number(rng.gen_range(100..340) as f64 / 10.0),
                _ => text(vocab::pseudo_word(rng, 2)),
            });
            // Regenerate the description from the mutated fields.
            let get = |k: &str| s.get(k).map(|v| v.to_text()).unwrap_or_default();
            let desc = format!(
                "the {} {} is a {} {} featuring {} and {} technology with a {} inch display \
                 and {} gb storage available now for {} dollars",
                get("brand"),
                spaced_model(&get("model")),
                vocab::pick(rng, vocab::FILLER_WORDS),
                get("category"),
                get("feature_a"),
                get("feature_b"),
                get("screen_size"),
                get("storage"),
                get("price"),
            );
            if let Some((_, v)) = s.attrs.iter_mut().find(|(k, _)| k == "description") {
                *v = Value::Text(desc);
            }
        }
        Domain::GeoSpatial => {
            // A second location of the same chain: same name/category.
            replace(
                &mut s,
                &["address", "latitude", "longitude"],
                &mut |k| match k {
                    "address" => text(vocab::street_address(rng)),
                    "latitude" => Value::Number(
                        ((40.35 + rng.gen_range(0..2000) as f64 / 10000.0) * 10000.0).round()
                            / 10000.0,
                    ),
                    _ => Value::Number(
                        ((-80.1 + rng.gen_range(0..2000) as f64 / 10000.0) * 10000.0).round()
                            / 10000.0,
                    ),
                },
            );
        }
    }
    s
}

/// Render a model code in "spaced" marketing form: `bu558-pro` → `bu558 pro`.
/// Whitespace tokenizations of the two forms do not overlap, while subword
/// tokenizers align them — the surface-form gap that separates token-level
/// matching (TDmatch) from LM matching in the paper's text datasets.
pub fn spaced_model(model: &str) -> String {
    model
        .split(|c: char| !c.is_alphanumeric())
        .filter(|p| !p.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

fn restaurant(rng: &mut impl Rng) -> Record {
    let name = format!(
        "{} {} {}",
        vocab::pick(rng, vocab::FILLER_WORDS),
        vocab::pseudo_word(rng, 2),
        ["grill", "bistro", "kitchen", "diner", "house", "garden"][rng.gen_range(0..6)]
    );
    Record::new()
        .with("name", text(name))
        .with("address", text(vocab::street_address(rng)))
        .with("city", text(vocab::pick(rng, vocab::CITIES).to_string()))
        .with("phone", text(vocab::phone(rng)))
        .with(
            "cuisine",
            text(vocab::pick(rng, vocab::CUISINES).to_string()),
        )
        .with("price", text(format!("${}", rng.gen_range(8..80))))
        .with(
            "rating",
            Value::Number((rng.gen_range(20..50) as f64) / 10.0),
        )
}

fn citation(rng: &mut impl Rng) -> Record {
    let title_len = rng.gen_range(5..9);
    let title = vocab::paper_title(rng, title_len);
    let n_auth = rng.gen_range(2..5);
    let authors: Vec<Value> = (0..n_auth)
        .map(|_| Value::Text(vocab::person_name(rng)))
        .collect();
    let venue = vocab::pick(rng, vocab::VENUES).to_string();
    let year = rng.gen_range(1998..2023) as f64;
    let start = rng.gen_range(1..3000);
    let abstract_ = citation_abstract(&title, &venue, rng);
    Record::new()
        .with("title", text(title))
        .with("authors", Value::List(authors))
        .with("venue", text(venue))
        .with("year", Value::Number(year))
        .with(
            "pages",
            text(format!("{}-{}", start, start + rng.gen_range(8..25))),
        )
        .with("volume", Value::Number(rng.gen_range(1..40) as f64))
        .with("number", Value::Number(rng.gen_range(1..13) as f64))
        .with(
            "publisher",
            text(vocab::pick(rng, vocab::PUBLISHERS).to_string()),
        )
        .with("abstract", text(abstract_))
}

/// An abstract-like paragraph sharing discriminative tokens with the title.
fn citation_abstract(title: &str, venue: &str, rng: &mut impl Rng) -> String {
    let topic_words: Vec<&str> = title.split_whitespace().collect();
    let mut s = format!("we study the problem of {}", title);
    s.push_str(&format!(
        ". we propose a {} approach to {} that improves {}",
        vocab::pick(rng, vocab::ADJECTIVES),
        topic_words.get(1).copied().unwrap_or("matching"),
        vocab::pick(rng, vocab::RESEARCH_TOPICS),
    ));
    s.push_str(&format!(
        ". extensive experiments on {} {} demonstrate the {} of our method presented at {}",
        vocab::pick(rng, vocab::ADJECTIVES),
        vocab::pick(rng, vocab::RESEARCH_OBJECTS),
        ["effectiveness", "efficiency", "robustness"][rng.gen_range(0..3)],
        venue,
    ));
    s
}

fn book(rng: &mut impl Rng) -> Record {
    let topic = vocab::pick(rng, vocab::RESEARCH_TOPICS).to_string();
    let title = format!(
        "{} {} in {} {}",
        [
            "professional",
            "learning",
            "mastering",
            "essential",
            "practical"
        ][rng.gen_range(0..5)],
        topic,
        vocab::pseudo_word(rng, 2),
        rng.gen_range(1..11),
    );
    let n_auth = rng.gen_range(1..4);
    let authors: Vec<Value> = (0..n_auth)
        .map(|_| Value::Text(vocab::person_name(rng)))
        .collect();
    Record::new()
        .with("title", text(title))
        .with("author", Value::List(authors))
        .with("isbn", text(vocab::isbn(rng)))
        .with(
            "publisher",
            text(vocab::pick(rng, vocab::PUBLISHERS).to_string()),
        )
        .with("publication_date", text(vocab::date(rng)))
        .with("pages", Value::Number(rng.gen_range(120..900) as f64))
        .with(
            "price",
            text(format!(
                "${}.{:02}",
                rng.gen_range(9..90),
                rng.gen_range(0..100)
            )),
        )
        .with(
            "product_type",
            text(["paperback", "hardcover", "ebook"][rng.gen_range(0..3)].into()),
        )
        .with("edition", Value::Number(rng.gen_range(1..6) as f64))
        .with("language", text("english".into()))
        .with(
            "weight",
            text(format!(
                "{:.1} ounces",
                rng.gen_range(40..400) as f64 / 10.0
            )),
        )
        .with(
            "dimensions",
            text(format!(
                "{:.1} x {:.1} x {:.1} inches",
                rng.gen_range(50..90) as f64 / 10.0,
                rng.gen_range(5..30) as f64 / 10.0,
                rng.gen_range(80..110) as f64 / 10.0
            )),
        )
}

fn movie(rng: &mut impl Rng) -> Record {
    let title = format!(
        "the {} {}",
        vocab::pick(rng, vocab::ADJECTIVES),
        vocab::pseudo_word(rng, 2)
    );
    let actors: Vec<Value> = (0..3)
        .map(|_| Value::Text(vocab::person_name(rng)))
        .collect();
    Record::new()
        .with("title", text(title))
        .with("director", text(vocab::person_name(rng)))
        .with("actors", Value::List(actors))
        .with("year", Value::Number(rng.gen_range(1970..2023) as f64))
        .with("genre", text(vocab::pick(rng, vocab::GENRES).to_string()))
        .with("duration", Value::Number(rng.gen_range(80..190) as f64))
        .with(
            "language",
            text(["english", "french", "spanish", "japanese"][rng.gen_range(0..4)].into()),
        )
        .with(
            "country",
            text(["usa", "uk", "france", "japan", "canada"][rng.gen_range(0..5)].into()),
        )
        .with(
            "rating",
            Value::Number((rng.gen_range(30..95) as f64) / 10.0),
        )
        .with("writer", text(vocab::person_name(rng)))
        .with("studio", text(vocab::pseudo_word(rng, 3)))
        .with("awards", Value::Number(rng.gen_range(0..12) as f64))
        .with("votes", Value::Number(rng.gen_range(100..200_000) as f64))
        .with(
            "certificate",
            text(["pg", "pg-13", "r", "g"][rng.gen_range(0..4)].into()),
        )
}

fn product(rng: &mut impl Rng) -> Record {
    let brand = vocab::pseudo_word(rng, 2);
    let model = format!(
        "{}{}-{}",
        vocab::pseudo_word(rng, 1),
        rng.gen_range(100..999),
        ["x", "s", "pro", "max", "lite"][rng.gen_range(0..5)]
    );
    let category = vocab::pick(rng, vocab::PRODUCT_CATEGORIES).to_string();
    let feature1 = vocab::pseudo_word(rng, 2);
    let feature2 = vocab::pseudo_word(rng, 2);
    let screen = rng.gen_range(100..340) as f64 / 10.0;
    let spaced = spaced_model(&model);
    let desc = format!(
        "the {brand} {spaced} is a {} {category} featuring {feature1} and {feature2} \
         technology with a {screen} inch display and {} gb storage available now for {} dollars",
        vocab::pick(rng, vocab::FILLER_WORDS),
        [64, 128, 256, 512][rng.gen_range(0..4)],
        rng.gen_range(99..1999),
    );
    Record::new()
        .with("brand", text(brand))
        .with("model", text(model))
        .with("category", text(category))
        .with("feature_a", text(feature1))
        .with("feature_b", text(feature2))
        .with("screen_size", Value::Number(screen))
        .with(
            "storage",
            Value::Number([64.0, 128.0, 256.0, 512.0][rng.gen_range(0..4)]),
        )
        .with("price", Value::Number(rng.gen_range(99..1999) as f64))
        .with(
            "sku",
            text(format!("sku{:07}", rng.gen_range(0..10_000_000))),
        )
        .with("description", text(desc))
}

fn poi(rng: &mut impl Rng) -> Record {
    let name = format!(
        "{} {}",
        vocab::pseudo_word(rng, 2),
        vocab::pick(rng, vocab::POI_CATEGORIES)
    );
    // Pittsburgh-ish bounding box (the GEO-HETER source is OSM-FSQ-Pittsburgh).
    let lat = 40.35 + rng.gen_range(0..2000) as f64 / 10000.0;
    let lon = -80.1 + rng.gen_range(0..2000) as f64 / 10000.0;
    Record::new()
        .with("name", text(name))
        .with("address", text(vocab::street_address(rng)))
        .with("city", text("pittsburgh".into()))
        .with(
            "category",
            text(vocab::pick(rng, vocab::POI_CATEGORIES).to_string()),
        )
        .with("latitude", Value::Number((lat * 10000.0).round() / 10000.0))
        .with(
            "longitude",
            Value::Number((lon * 10000.0).round() / 10000.0),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_domains_generate() {
        let mut rng = StdRng::seed_from_u64(12);
        for d in [
            Domain::Restaurant,
            Domain::Citation,
            Domain::Book,
            Domain::Movie,
            Domain::Product,
            Domain::GeoSpatial,
        ] {
            let es = generate(d, 5, &mut rng);
            assert_eq!(es.len(), 5);
            for e in &es {
                assert!(e.arity() >= 6, "{d} entity too thin: {}", e.arity());
            }
        }
    }

    #[test]
    fn citation_abstract_shares_title_tokens() {
        let mut rng = StdRng::seed_from_u64(13);
        let e = generate(Domain::Citation, 1, &mut rng).remove(0);
        let title = e.get("title").unwrap().to_text();
        let abs = e.get("abstract").unwrap().to_text();
        let shared = title
            .split_whitespace()
            .filter(|t| abs.contains(*t))
            .count();
        assert!(shared >= 3, "abstract shares too few tokens with title");
    }

    #[test]
    fn product_description_mentions_brand_and_spaced_model() {
        let mut rng = StdRng::seed_from_u64(14);
        let e = generate(Domain::Product, 1, &mut rng).remove(0);
        let desc = e.get("description").unwrap().to_text();
        assert!(desc.contains(&e.get("brand").unwrap().to_text()));
        // The description uses the marketing (spaced) form of the model
        // code: whitespace tokens differ from the spec table, subword
        // pieces align.
        let model = e.get("model").unwrap().to_text();
        assert!(
            desc.contains(&spaced_model(&model)),
            "spaced model missing: {desc}"
        );
    }

    #[test]
    fn spaced_model_splits_on_punctuation() {
        assert_eq!(spaced_model("bu558-pro"), "bu558 pro");
        assert_eq!(spaced_model("x100"), "x100");
    }

    #[test]
    fn siblings_share_headline_but_differ_in_details() {
        let mut rng = StdRng::seed_from_u64(77);
        for d in [
            Domain::Restaurant,
            Domain::Citation,
            Domain::Book,
            Domain::Movie,
            Domain::Product,
            Domain::GeoSpatial,
        ] {
            let e = generate(d, 1, &mut rng).remove(0);
            let s = sibling(d, &e, &mut rng);
            // Same arity, same schema.
            assert_eq!(e.arity(), s.arity(), "{d}");
            // The headline attribute is preserved...
            let headline = ["name", "title", "brand"]
                .iter()
                .find_map(|k| e.get(k).map(|v| (k, v.to_text())));
            if let Some((k, v)) = headline {
                assert_eq!(s.get(k).unwrap().to_text(), v, "{d}: headline changed");
            }
            // ...but at least one attribute differs.
            assert_ne!(e, s, "{d}: sibling identical to entity");
        }
    }

    #[test]
    fn poi_coordinates_in_bounding_box() {
        let mut rng = StdRng::seed_from_u64(15);
        for e in generate(Domain::GeoSpatial, 20, &mut rng) {
            let lat = match e.get("latitude").unwrap() {
                Value::Number(n) => *n,
                _ => panic!("lat not numeric"),
            };
            assert!((40.3..40.6).contains(&lat), "lat out of box: {lat}");
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate(Domain::Book, 3, &mut StdRng::seed_from_u64(16));
        let b = generate(Domain::Book, 3, &mut StdRng::seed_from_u64(16));
        assert_eq!(a, b);
    }
}
