//! Noise channels applied when deriving table views from canonical
//! entities. These reproduce the dirtiness that makes the real benchmarks
//! hard: typos, abbreviations, dropped attributes/tokens, case and format
//! changes.

use rand::Rng;

/// Per-view noise intensities (probabilities per applicable unit).
#[derive(Debug, Clone, Copy)]
pub struct NoiseCfg {
    /// Probability a word receives a character-level typo.
    pub typo: f64,
    /// Probability a word is abbreviated to its first letter + '.'.
    pub abbrev: f64,
    /// Probability a token is dropped from a multi-token value.
    pub drop_token: f64,
    /// Probability an entire attribute is omitted from the view.
    pub drop_attr: f64,
}

impl NoiseCfg {
    /// Clean view (no perturbation).
    pub const CLEAN: NoiseCfg = NoiseCfg {
        typo: 0.0,
        abbrev: 0.0,
        drop_token: 0.0,
        drop_attr: 0.0,
    };

    /// The default dirtiness of a matching view.
    pub const DIRTY: NoiseCfg = NoiseCfg {
        typo: 0.14,
        abbrev: 0.10,
        drop_token: 0.16,
        drop_attr: 0.14,
    };

    /// Heavier noise for the hardest datasets.
    pub const VERY_DIRTY: NoiseCfg = NoiseCfg {
        typo: 0.22,
        abbrev: 0.16,
        drop_token: 0.25,
        drop_attr: 0.20,
    };
}

/// Apply one random character-level typo: swap, drop or duplicate.
pub fn typo(word: &str, rng: &mut impl Rng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 2 {
        return word.to_string();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => out.swap(i, i + 1),
        1 => {
            out.remove(i);
        }
        _ => out.insert(i, chars[i]),
    }
    out.into_iter().collect()
}

/// Abbreviate a word to its first letter followed by a period.
pub fn abbreviate(word: &str) -> String {
    match word.chars().next() {
        Some(c) => format!("{c}."),
        None => String::new(),
    }
}

/// Apply word-level noise to a multi-token string.
pub fn noisy_text(text: &str, cfg: &NoiseCfg, rng: &mut impl Rng) -> String {
    let words: Vec<&str> = text.split_whitespace().collect();
    let mut out: Vec<String> = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        // Never drop down to an empty value.
        if words.len() > 1 && !out.is_empty() && rng.gen_bool(cfg.drop_token) && i + 1 < words.len()
        {
            continue;
        }
        let w = if rng.gen_bool(cfg.abbrev) && w.len() > 2 {
            abbreviate(w)
        } else if rng.gen_bool(cfg.typo) && w.len() > 2 {
            typo(w, rng)
        } else {
            w.to_string()
        };
        out.push(w);
    }
    if out.is_empty() {
        return text.to_string();
    }
    out.join(" ")
}

/// Should this attribute be dropped from the view entirely?
pub fn drop_attr(cfg: &NoiseCfg, rng: &mut impl Rng) -> bool {
    rng.gen_bool(cfg.drop_attr)
}

/// Reformat a "mm/dd/yyyy" date into "yyyy-mm-dd" (format heterogeneity).
pub fn reformat_date(date: &str) -> String {
    let parts: Vec<&str> = date.split('/').collect();
    if parts.len() == 3 {
        format!("{}-{}-{}", parts[2], parts[0], parts[1])
    } else {
        date.to_string()
    }
}

/// Reformat a "ddd-ddd-dddd" phone into "(ddd) ddd dddd".
pub fn reformat_phone(phone: &str) -> String {
    let parts: Vec<&str> = phone.split('-').collect();
    if parts.len() == 3 {
        format!("({}) {} {}", parts[0], parts[1], parts[2])
    } else {
        phone.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn typo_changes_long_words() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut changed = 0;
        for _ in 0..20 {
            if typo("restaurant", &mut rng) != "restaurant" {
                changed += 1;
            }
        }
        assert!(changed >= 15, "typo rarely fired: {changed}");
    }

    #[test]
    fn typo_leaves_short_words() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(typo("a", &mut rng), "a");
    }

    #[test]
    fn abbreviate_keeps_first_letter() {
        assert_eq!(abbreviate("ronald"), "r.");
        assert_eq!(abbreviate(""), "");
    }

    #[test]
    fn clean_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(10);
        let text = "efficient similarity search over tables";
        assert_eq!(noisy_text(text, &NoiseCfg::CLEAN, &mut rng), text);
    }

    #[test]
    fn noisy_text_never_empties() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = NoiseCfg {
            typo: 0.5,
            abbrev: 0.5,
            drop_token: 0.9,
            drop_attr: 0.0,
        };
        for _ in 0..50 {
            let out = noisy_text("alpha beta gamma", &cfg, &mut rng);
            assert!(!out.trim().is_empty());
        }
    }

    #[test]
    fn reformatters() {
        assert_eq!(reformat_date("11/08/2012"), "2012-11-08");
        assert_eq!(reformat_date("garbage"), "garbage");
        assert_eq!(reformat_phone("412-555-0000"), "(412) 555 0000");
        assert_eq!(reformat_phone("x"), "x");
    }
}
