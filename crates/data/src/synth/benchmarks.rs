//! Synthetic replicas of the eight evaluation datasets (paper Table 1).
//!
//! Each builder derives two table views from a shared canonical universe so
//! labels are exact, then reproduces the structural properties the paper's
//! analysis leans on: format mixes (REL/SEMI/TEXT), schema heterogeneity,
//! numeric-heavy attributes (SEMI-HETER), long textual entries
//! (SEMI-TEXT-*, REL-TEXT), near-duplicate hard negatives (Appendix C), and
//! per-dataset label rates.

use super::noise::{self, NoiseCfg};
use super::universe::{self, Domain};
use crate::blocking::{record_tokens, TokenIndex};
use crate::pair::{stratified_split, three_way_split, GemDataset, LabeledPair, Pair};
use crate::record::{Format, Record, Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The eight benchmarks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// Restaurants; relational vs relational, heterogeneous schemas.
    RelHeter,
    /// Citations; semi-structured both sides, homogeneous schema.
    SemiHomo,
    /// Books; semi-structured, heterogeneous, numeric-heavy.
    SemiHeter,
    /// Movies; semi-structured vs relational.
    SemiRel,
    /// Products (computers); semi-structured vs textual.
    SemiTextC,
    /// Products (watches-difficulty); semi-structured vs textual, hardest.
    SemiTextW,
    /// Citations; textual abstracts vs relational metadata.
    RelText,
    /// Points of interest; fused-position heterogeneous schema.
    GeoHeter,
}

impl BenchmarkId {
    /// All eight benchmarks in Table 1 order.
    pub const ALL: [BenchmarkId; 8] = [
        BenchmarkId::RelHeter,
        BenchmarkId::SemiHomo,
        BenchmarkId::SemiHeter,
        BenchmarkId::SemiRel,
        BenchmarkId::SemiTextC,
        BenchmarkId::SemiTextW,
        BenchmarkId::RelText,
        BenchmarkId::GeoHeter,
    ];

    /// The paper's dataset name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkId::RelHeter => "REL-HETER",
            BenchmarkId::SemiHomo => "SEMI-HOMO",
            BenchmarkId::SemiHeter => "SEMI-HETER",
            BenchmarkId::SemiRel => "SEMI-REL",
            BenchmarkId::SemiTextC => "SEMI-TEXT-c",
            BenchmarkId::SemiTextW => "SEMI-TEXT-w",
            BenchmarkId::RelText => "REL-TEXT",
            BenchmarkId::GeoHeter => "GEO-HETER",
        }
    }

    /// The abbreviation used in Table 4.
    pub fn abbrev(&self) -> &'static str {
        match self {
            BenchmarkId::RelHeter => "R-H",
            BenchmarkId::SemiHomo => "S-HO",
            BenchmarkId::SemiHeter => "S-HE",
            BenchmarkId::SemiRel => "S-R",
            BenchmarkId::SemiTextC => "S-T-c",
            BenchmarkId::SemiTextW => "S-T-w",
            BenchmarkId::RelText => "R-T",
            BenchmarkId::GeoHeter => "G-H",
        }
    }

    /// The generating domain.
    pub fn domain(&self) -> Domain {
        match self {
            BenchmarkId::RelHeter => Domain::Restaurant,
            BenchmarkId::SemiHomo | BenchmarkId::RelText => Domain::Citation,
            BenchmarkId::SemiHeter => Domain::Book,
            BenchmarkId::SemiRel => Domain::Movie,
            BenchmarkId::SemiTextC | BenchmarkId::SemiTextW => Domain::Product,
            BenchmarkId::GeoHeter => Domain::GeoSpatial,
        }
    }

    /// The labeled-data rate of the default low-resource setting (Table 1).
    pub fn rate(&self) -> f64 {
        match self {
            BenchmarkId::SemiHomo | BenchmarkId::SemiTextC => 0.05,
            _ => 0.10,
        }
    }
}

/// Experiment scale. `Quick` keeps every benchmark runnable on one CPU core
/// in seconds; `Full` approaches the paper's labeled-data sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-run scale for one CPU core (default).
    Quick,
    /// Larger datasets and budgets approaching the paper's label counts.
    Full,
}

impl Scale {
    /// Read the scale from `PROMPTEM_SCALE` (defaults to quick).
    pub fn from_env() -> Scale {
        match std::env::var("PROMPTEM_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// (entities, labeled-entity count) per benchmark at this scale. Each
    /// labeled entity yields one positive and three negatives.
    fn sizes(&self, id: BenchmarkId) -> (usize, usize) {
        let (e_full, l_full) = match id {
            BenchmarkId::RelHeter => (500, 140),
            BenchmarkId::SemiHomo => (900, 300),
            BenchmarkId::SemiHeter => (700, 300),
            BenchmarkId::SemiRel => (800, 320),
            BenchmarkId::SemiTextC => (900, 300),
            BenchmarkId::SemiTextW => (700, 260),
            BenchmarkId::RelText => (700, 260),
            BenchmarkId::GeoHeter => (650, 280),
        };
        match self {
            Scale::Full => (e_full, l_full),
            Scale::Quick => ((e_full / 4).max(80), (l_full / 4).max(50)),
        }
    }
}

/// Build one benchmark dataset deterministically from a seed.
///
/// ```
/// use em_data::synth::{build, BenchmarkId, Scale};
/// let ds = build(BenchmarkId::RelHeter, Scale::Quick, 42);
/// assert_eq!(ds.name, "REL-HETER");
/// assert!(!ds.train.is_empty() && !ds.unlabeled.is_empty());
/// // Deterministic under the seed:
/// assert_eq!(ds.train, build(BenchmarkId::RelHeter, Scale::Quick, 42).train);
/// ```
pub fn build(id: BenchmarkId, scale: Scale, seed: u64) -> GemDataset {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_id(id));
    let (n_entities, n_labeled) = scale.sizes(id);
    match id {
        BenchmarkId::RelHeter => rel_heter(n_entities, n_labeled, &mut rng),
        BenchmarkId::SemiHomo => semi_homo(n_entities, n_labeled, &mut rng),
        BenchmarkId::SemiHeter => semi_heter(n_entities, n_labeled, &mut rng),
        BenchmarkId::SemiRel => semi_rel(n_entities, n_labeled, &mut rng),
        BenchmarkId::SemiTextC => semi_text(n_entities, n_labeled, false, &mut rng),
        BenchmarkId::SemiTextW => semi_text(n_entities, n_labeled, true, &mut rng),
        BenchmarkId::RelText => rel_text(n_entities, n_labeled, &mut rng),
        BenchmarkId::GeoHeter => geo_heter(n_entities, n_labeled, &mut rng),
    }
}

/// Build all eight benchmarks.
pub fn build_all(scale: Scale, seed: u64) -> Vec<GemDataset> {
    BenchmarkId::ALL
        .iter()
        .map(|&id| build(id, scale, seed))
        .collect()
}

fn hash_id(id: BenchmarkId) -> u64 {
    // lint:allow(unwrap) — ALL by definition contains every id
    (BenchmarkId::ALL.iter().position(|&x| x == id).unwrap() as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// ---------------------------------------------------------------------------
// Shared assembly machinery
// ---------------------------------------------------------------------------

/// Copy a subset of attributes, renaming and noising them.
fn project(entity: &Record, mapping: &[(&str, &str)], cfg: &NoiseCfg, rng: &mut StdRng) -> Record {
    let mut out = Record::new();
    for &(src, dst) in mapping {
        if noise::drop_attr(cfg, rng) {
            continue;
        }
        let Some(value) = entity.get(src) else {
            continue;
        };
        let noisy = noisy_value(value, cfg, rng);
        out.push(dst, noisy);
    }
    if out.attrs.is_empty() {
        // Never emit a completely empty record: keep the first attribute.
        if let Some((_, v)) = entity.attrs.first() {
            out.push(mapping.first().map(|m| m.1).unwrap_or("value"), v.clone());
        }
    }
    out
}

fn noisy_value(value: &Value, cfg: &NoiseCfg, rng: &mut StdRng) -> Value {
    match value {
        Value::Text(s) => Value::Text(noise::noisy_text(s, cfg, rng)),
        Value::List(items) => Value::List(items.iter().map(|v| noisy_value(v, cfg, rng)).collect()),
        Value::Nested(fields) => Value::Nested(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), noisy_value(v, cfg, rng)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Assemble a [`GemDataset`] from two views plus labeled pairs, splitting
/// into train/valid/test (60/20/20 of the labels) and then taking `rate` of
/// *all* labels as the low-resource train set (the remainder of the train
/// pool becomes the unlabeled pool), matching Table 1's construction.
#[allow(clippy::too_many_arguments)]
fn assemble(
    id: BenchmarkId,
    left: Table,
    right: Table,
    positives: Vec<Pair>,
    negatives: Vec<Pair>,
    rng: &mut StdRng,
) -> GemDataset {
    let mut labeled: Vec<LabeledPair> = Vec::with_capacity(positives.len() + negatives.len());
    labeled.extend(
        positives
            .into_iter()
            .map(|pair| LabeledPair { pair, label: true }),
    );
    labeled.extend(
        negatives
            .into_iter()
            .map(|pair| LabeledPair { pair, label: false }),
    );
    labeled.shuffle(rng);
    let all = labeled.len();
    let (mut pool, valid, test) = three_way_split(labeled, 0.2, 0.2, rng);
    let rate = id.rate();
    let want = ((all as f64) * rate).round().max(4.0) as usize;
    let want = want.min(pool.len());
    let (train, unlabeled) = stratified_split(&mut pool, want, rng);
    GemDataset {
        name: id.name().to_string(),
        domain: id.domain().to_string(),
        left,
        right,
        train,
        valid,
        test,
        unlabeled,
        rate,
    }
}

/// Sample hard + random negatives for each labeled entity. `i` indexes both
/// the labeled entity's left-table row and its right-table match.
fn sample_negatives(
    labeled_idx: &[usize],
    left: &Table,
    right: &Table,
    per_entity: usize,
    rng: &mut StdRng,
) -> Vec<Pair> {
    let index = TokenIndex::build(&right.records, right.format);
    let mut negatives = Vec::with_capacity(labeled_idx.len() * per_entity);
    for &i in labeled_idx {
        let query = record_tokens(&left.records[i], left.format);
        // All-hard negatives: the most overlapping non-matches. Real EM
        // candidate sets come out of a blocker, so every candidate shares
        // tokens with the query — random negatives would be unrealistically
        // easy for overlap-based methods.
        let hard = index.candidates(&query, 2, Some(i));
        let mut chosen = std::collections::HashSet::new();
        for &(j, _) in hard.iter().take(per_entity) {
            chosen.insert(j);
        }
        // Random fallback when blocking yields too few candidates; the set
        // guarantees no duplicate pairs reach the labeled splits.
        let mut guard = 0;
        while chosen.len() < per_entity && guard < 100 {
            let j = rng.gen_range(0..right.records.len());
            if j != i {
                chosen.insert(j);
            }
            guard += 1;
        }
        let mut chosen: Vec<usize> = chosen.into_iter().collect();
        chosen.sort_unstable();
        negatives.extend(chosen.into_iter().map(|j| Pair { left: i, right: j }));
    }
    negatives
}

/// Extend a universe with near-duplicate sibling entities (one per entity
/// for the first `frac` of the pool). Siblings become the top blocking
/// candidates and hence the hard negatives of the labeled pairs.
fn with_siblings(
    mut entities: Vec<Record>,
    domain: Domain,
    frac: f64,
    rng: &mut StdRng,
) -> Vec<Record> {
    let n = ((entities.len() as f64) * frac) as usize;
    let mut siblings = Vec::with_capacity(n);
    for e in entities.iter().take(n) {
        siblings.push(universe::sibling(domain, e, rng));
    }
    entities.extend(siblings);
    entities
}

/// Pick which entities get labels.
fn labeled_entities(n_entities: usize, n_labeled: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n_entities).collect();
    idx.shuffle(rng);
    idx.truncate(n_labeled.min(n_entities));
    idx
}

// ---------------------------------------------------------------------------
// REL-HETER — restaurants, relational vs relational, heterogeneous schemas
// ---------------------------------------------------------------------------

fn rel_heter(n: usize, n_labeled: usize, rng: &mut StdRng) -> GemDataset {
    let entities = with_siblings(
        universe::generate(Domain::Restaurant, n, rng),
        Domain::Restaurant,
        0.5,
        rng,
    );
    let mut left = Table::new("left", Format::Relational);
    let mut right = Table::new("right", Format::Relational);
    for e in &entities {
        left.records.push(project(
            e,
            &[
                ("name", "name"),
                ("address", "addr"),
                ("city", "city"),
                ("phone", "phone"),
                ("cuisine", "type"),
                ("price", "price"),
            ],
            &NoiseCfg::CLEAN,
            rng,
        ));
        let mut r = project(
            e,
            &[
                ("name", "restaurant_name"),
                ("address", "street"),
                ("city", "city"),
                ("cuisine", "category"),
                ("price", "cost"),
                ("rating", "rating"),
            ],
            &NoiseCfg::DIRTY,
            rng,
        );
        // Reformatted phone under a different attribute name.
        if let Some(p) = e.get("phone") {
            r.push(
                "telephone",
                Value::Text(noise::reformat_phone(&p.to_text())),
            );
        }
        right.records.push(r);
    }
    let idx = labeled_entities(n, n_labeled, rng);
    let positives: Vec<Pair> = idx.iter().map(|&i| Pair { left: i, right: i }).collect();
    let negatives = sample_negatives(&idx, &left, &right, 3, rng);
    assemble(
        BenchmarkId::RelHeter,
        left,
        right,
        positives,
        negatives,
        rng,
    )
}

// ---------------------------------------------------------------------------
// SEMI-HOMO — citations, semi-structured vs semi-structured, same schema
// ---------------------------------------------------------------------------

fn citation_semi_view(e: &Record, cfg: &NoiseCfg, rng: &mut StdRng) -> Record {
    let mut out = project(
        e,
        &[
            ("title", "title"),
            ("authors", "authors"),
            ("year", "year"),
            ("pages", "pages"),
        ],
        cfg,
        rng,
    );
    // Nested publication block (exercises the recursive serialization).
    let mut publication = Vec::new();
    if let Some(v) = e.get("venue") {
        publication.push(("venue".to_string(), noisy_value(v, cfg, rng)));
    }
    if let Some(v) = e.get("volume") {
        publication.push(("volume".to_string(), v.clone()));
    }
    if let Some(v) = e.get("number") {
        publication.push(("number".to_string(), v.clone()));
    }
    out.push("publication", Value::Nested(publication));
    if let Some(p) = e.get("publisher") {
        out.push("publisher", noisy_value(p, cfg, rng));
    }
    out
}

fn semi_homo(n: usize, n_labeled: usize, rng: &mut StdRng) -> GemDataset {
    let entities = with_siblings(
        universe::generate(Domain::Citation, n, rng),
        Domain::Citation,
        0.7,
        rng,
    );
    // The real SEMI-HOMO right table is ~25x larger; emulate with 3x
    // distractors to keep blocking realistic.
    let distractors = universe::generate(Domain::Citation, 3 * n, rng);
    let mut left = Table::new("left", Format::SemiStructured);
    let mut right = Table::new("right", Format::SemiStructured);
    for e in &entities {
        left.records
            .push(citation_semi_view(e, &NoiseCfg::CLEAN, rng));
        right
            .records
            .push(citation_semi_view(e, &NoiseCfg::DIRTY, rng));
    }
    for d in &distractors {
        right
            .records
            .push(citation_semi_view(d, &NoiseCfg::CLEAN, rng));
    }
    let idx = labeled_entities(n, n_labeled, rng);
    let positives: Vec<Pair> = idx.iter().map(|&i| Pair { left: i, right: i }).collect();
    let negatives = sample_negatives(&idx, &left, &right, 3, rng);
    assemble(
        BenchmarkId::SemiHomo,
        left,
        right,
        positives,
        negatives,
        rng,
    )
}

// ---------------------------------------------------------------------------
// SEMI-HETER — books, semi-structured, heterogeneous, numeric-heavy
// ---------------------------------------------------------------------------

fn semi_heter(n: usize, n_labeled: usize, rng: &mut StdRng) -> GemDataset {
    // Books breed near-duplicate editions — the error-analysis dataset gets
    // the densest sibling population.
    let entities = with_siblings(
        universe::generate(Domain::Book, n, rng),
        Domain::Book,
        0.6,
        rng,
    );

    let mut left = Table::new("left", Format::SemiStructured);
    let mut right = Table::new("right", Format::SemiStructured);
    for e in &entities {
        left.records.push(project(
            e,
            &[
                ("title", "title"),
                ("author", "author"),
                ("isbn", "isbn"),
                ("publisher", "publisher"),
                ("publication_date", "pubdate"),
                ("pages", "pages"),
                ("price", "price"),
                ("product_type", "binding"),
                ("edition", "edition"),
                ("language", "language"),
                ("weight", "weight"),
                ("dimensions", "dimensions"),
            ],
            &NoiseCfg::CLEAN,
            rng,
        ));
        // Right view: heterogeneous names, reformatted date, numeric heavy.
        let mut r = project(
            e,
            &[
                ("title", "Title"),
                ("author", "Author"),
                ("isbn", "ISBN13"),
                ("publisher", "Publisher"),
                ("pages", "Pages"),
                ("price", "price"),
                ("product_type", "ProductType"),
                ("edition", "Edition"),
                ("weight", "ShippingWeight"),
                ("dimensions", "ProductDimensions"),
                ("language", "Language"),
            ],
            &NoiseCfg::DIRTY,
            rng,
        );
        if let Some(d) = e.get("publication_date") {
            r.push(
                "PublicationDate",
                Value::Text(noise::reformat_date(&d.to_text())),
            );
        }
        right.records.push(r);
    }
    let idx = labeled_entities(n, n_labeled, rng);
    let positives: Vec<Pair> = idx.iter().map(|&i| Pair { left: i, right: i }).collect();
    let negatives = sample_negatives(&idx, &left, &right, 3, rng);
    assemble(
        BenchmarkId::SemiHeter,
        left,
        right,
        positives,
        negatives,
        rng,
    )
}

// ---------------------------------------------------------------------------
// SEMI-REL — movies, semi-structured vs relational
// ---------------------------------------------------------------------------

fn semi_rel(n: usize, n_labeled: usize, rng: &mut StdRng) -> GemDataset {
    let entities = with_siblings(
        universe::generate(Domain::Movie, n, rng),
        Domain::Movie,
        0.5,
        rng,
    );
    let mut left = Table::new("left", Format::SemiStructured);
    let mut right = Table::new("right", Format::Relational);
    for e in &entities {
        left.records.push(project(
            e,
            &[
                ("title", "title"),
                ("director", "director"),
                ("actors", "actors"),
                ("year", "year"),
                ("genre", "genre"),
                ("duration", "duration"),
                ("language", "language"),
                ("country", "country"),
            ],
            &NoiseCfg::CLEAN,
            rng,
        ));
        // Relational view explodes the actor list into columns and carries
        // extra attributes (mean arity ~14 in Table 1).
        let mut r = project(
            e,
            &[
                ("title", "movie_title"),
                ("director", "directed_by"),
                ("year", "release_year"),
                ("genre", "genre"),
                ("duration", "runtime_minutes"),
                ("language", "language"),
                ("country", "country"),
                ("writer", "writer"),
                ("studio", "studio"),
                ("awards", "awards"),
                ("votes", "votes"),
                ("certificate", "certificate"),
                ("rating", "imdb_rating"),
            ],
            &NoiseCfg::DIRTY,
            rng,
        );
        if let Some(Value::List(actors)) = e.get("actors") {
            for (k, a) in actors.iter().enumerate() {
                r.push(
                    format!("star{}", k + 1),
                    noisy_value(a, &NoiseCfg::DIRTY, rng),
                );
            }
        }
        right.records.push(r);
    }
    let idx = labeled_entities(n, n_labeled, rng);
    let positives: Vec<Pair> = idx.iter().map(|&i| Pair { left: i, right: i }).collect();
    let negatives = sample_negatives(&idx, &left, &right, 3, rng);
    assemble(BenchmarkId::SemiRel, left, right, positives, negatives, rng)
}

// ---------------------------------------------------------------------------
// SEMI-TEXT-c / SEMI-TEXT-w — products, semi-structured vs textual
// ---------------------------------------------------------------------------

fn semi_text(n: usize, n_labeled: usize, hard: bool, rng: &mut StdRng) -> GemDataset {
    let frac = if hard { 0.6 } else { 0.5 };
    let entities = with_siblings(
        universe::generate(Domain::Product, n, rng),
        Domain::Product,
        frac,
        rng,
    );
    let mut left = Table::new("left", Format::SemiStructured);
    let mut right = Table::new("right", Format::Textual);
    let cfg = if hard {
        NoiseCfg::VERY_DIRTY
    } else {
        NoiseCfg::DIRTY
    };
    for e in &entities {
        left.records.push(project(
            e,
            &[
                ("brand", "brand"),
                ("model", "model"),
                ("category", "category"),
                ("feature_a", "feature_a"),
                ("feature_b", "feature_b"),
                ("screen_size", "screen_size"),
                ("storage", "storage"),
                ("price", "price"),
                ("sku", "sku"),
            ],
            &NoiseCfg::CLEAN,
            rng,
        ));
        // The text side: the entity description, noised, padded with filler
        // sentences so TF-IDF summarization has work to do. The harder "-w"
        // variant buries the signal under more filler and heavier noise.
        let desc = e
            .get("description")
            .map(|d| d.to_text())
            .unwrap_or_default();
        let mut text = noise::noisy_text(&desc, &cfg, rng);
        let n_filler = if hard {
            rng.gen_range(7..13)
        } else {
            rng.gen_range(3..7)
        };
        for _ in 0..n_filler {
            text.push_str(&filler_sentence(rng));
        }
        right.records.push(Record::textual(text));
    }
    let idx = labeled_entities(n, n_labeled, rng);
    let positives: Vec<Pair> = idx.iter().map(|&i| Pair { left: i, right: i }).collect();
    let negatives = sample_negatives(&idx, &left, &right, 3, rng);
    let id = if hard {
        BenchmarkId::SemiTextW
    } else {
        BenchmarkId::SemiTextC
    };
    assemble(id, left, right, positives, negatives, rng)
}

fn filler_sentence(rng: &mut StdRng) -> String {
    let templates = [
        " free shipping on orders over 25 dollars and easy returns within 30 days",
        " customers also viewed similar items in this category this week",
        " sign up for our newsletter to receive exclusive offers and deals",
        " this item ships from our warehouse within two business days",
        " limited time offer while supplies last terms and conditions apply",
        " read verified reviews from customers who purchased this product",
    ];
    templates[rng.gen_range(0..templates.len())].to_string()
}

// ---------------------------------------------------------------------------
// REL-TEXT — citations: textual abstracts (1 attr) vs relational metadata
// ---------------------------------------------------------------------------

fn rel_text(n: usize, n_labeled: usize, rng: &mut StdRng) -> GemDataset {
    let entities = with_siblings(
        universe::generate(Domain::Citation, n, rng),
        Domain::Citation,
        0.5,
        rng,
    );
    let mut left = Table::new("left", Format::Textual);
    let mut right = Table::new("right", Format::Relational);
    for e in &entities {
        let abs = e.get("abstract").map(|a| a.to_text()).unwrap_or_default();
        left.records.push(Record::textual(noise::noisy_text(
            &abs,
            &NoiseCfg::DIRTY,
            rng,
        )));
        right.records.push(project(
            e,
            &[
                ("title", "title"),
                ("authors", "authors"),
                ("venue", "venue"),
                ("year", "year"),
                ("pages", "pages"),
                ("volume", "volume"),
            ],
            &NoiseCfg::CLEAN,
            rng,
        ));
    }
    let idx = labeled_entities(n, n_labeled, rng);
    let positives: Vec<Pair> = idx.iter().map(|&i| Pair { left: i, right: i }).collect();
    let negatives = sample_negatives(&idx, &left, &right, 3, rng);
    assemble(BenchmarkId::RelText, left, right, positives, negatives, rng)
}

// ---------------------------------------------------------------------------
// GEO-HETER — points of interest; right table fuses lat/lon into "position"
// ---------------------------------------------------------------------------

fn geo_heter(n: usize, n_labeled: usize, rng: &mut StdRng) -> GemDataset {
    let entities = with_siblings(
        universe::generate(Domain::GeoSpatial, n, rng),
        Domain::GeoSpatial,
        0.5,
        rng,
    );
    let mut left = Table::new("left", Format::Relational);
    let mut right = Table::new("right", Format::Relational);
    for e in &entities {
        left.records.push(project(
            e,
            &[
                ("name", "name"),
                ("address", "address"),
                ("category", "category"),
                ("latitude", "latitude"),
                ("longitude", "longitude"),
            ],
            &NoiseCfg::CLEAN,
            rng,
        ));
        let mut r = project(
            e,
            &[
                ("name", "name"),
                ("address", "address"),
                ("category", "category"),
            ],
            &NoiseCfg::DIRTY,
            rng,
        );
        // "the latitude and longitude of the right table are combined into a
        // single position attribute" (Appendix E), with small GPS jitter.
        let lat = num(e.get("latitude")) + rng.gen_range(-3..4) as f64 * 1e-4;
        let lon = num(e.get("longitude")) + rng.gen_range(-3..4) as f64 * 1e-4;
        r.push("position", Value::Text(format!("{lat:.4} {lon:.4}")));
        right.records.push(r);
    }
    let idx = labeled_entities(n, n_labeled, rng);
    let positives: Vec<Pair> = idx.iter().map(|&i| Pair { left: i, right: i }).collect();
    let negatives = sample_negatives(&idx, &left, &right, 3, rng);
    assemble(
        BenchmarkId::GeoHeter,
        left,
        right,
        positives,
        negatives,
        rng,
    )
}

fn num(v: Option<&Value>) -> f64 {
    match v {
        Some(Value::Number(n)) => *n,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_quickly() {
        for d in build_all(Scale::Quick, 7) {
            assert!(!d.train.is_empty(), "{}: empty train", d.name);
            assert!(!d.valid.is_empty(), "{}: empty valid", d.name);
            assert!(!d.test.is_empty(), "{}: empty test", d.name);
            assert!(!d.unlabeled.is_empty(), "{}: empty unlabeled pool", d.name);
            assert!(
                d.train_pos_rate() > 0.05 && d.train_pos_rate() < 0.6,
                "{}: degenerate positive rate {}",
                d.name,
                d.train_pos_rate()
            );
        }
    }

    #[test]
    fn builds_are_seed_deterministic() {
        let a = build(BenchmarkId::RelHeter, Scale::Quick, 42);
        let b = build(BenchmarkId::RelHeter, Scale::Quick, 42);
        assert_eq!(a.train, b.train);
        assert_eq!(a.left.records[0], b.left.records[0]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(BenchmarkId::RelHeter, Scale::Quick, 1);
        let b = build(BenchmarkId::RelHeter, Scale::Quick, 2);
        assert_ne!(a.left.records[0], b.left.records[0]);
    }

    #[test]
    fn formats_match_table1() {
        use BenchmarkId::*;
        let expect = [
            (RelHeter, Format::Relational, Format::Relational),
            (SemiHomo, Format::SemiStructured, Format::SemiStructured),
            (SemiHeter, Format::SemiStructured, Format::SemiStructured),
            (SemiRel, Format::SemiStructured, Format::Relational),
            (SemiTextC, Format::SemiStructured, Format::Textual),
            (SemiTextW, Format::SemiStructured, Format::Textual),
            (RelText, Format::Textual, Format::Relational),
            (GeoHeter, Format::Relational, Format::Relational),
        ];
        for (id, lf, rf) in expect {
            let d = build(id, Scale::Quick, 3);
            assert_eq!(d.left.format, lf, "{}", d.name);
            assert_eq!(d.right.format, rf, "{}", d.name);
        }
    }

    #[test]
    fn semi_heter_is_numeric_heavy() {
        let d = build(BenchmarkId::SemiHeter, Scale::Quick, 4);
        let frac: f64 = d
            .right
            .records
            .iter()
            .map(|r| r.numeric_fraction())
            .sum::<f64>()
            / d.right.records.len() as f64;
        assert!(
            frac > 0.3,
            "SEMI-HETER right view lost its numeric attributes: {frac}"
        );
    }

    #[test]
    fn positive_pairs_share_tokens() {
        use crate::blocking::{jaccard, record_tokens};
        let d = build(BenchmarkId::SemiHomo, Scale::Quick, 5);
        let mut sims = Vec::new();
        for lp in d.train.iter().filter(|p| p.label) {
            let (l, r) = d.records(lp.pair);
            let lt = record_tokens(l, d.left.format);
            let rt = record_tokens(r, d.right.format);
            sims.push(jaccard(&lt, &rt));
        }
        let mean = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(mean > 0.3, "positives dissimilar: {mean}");
    }

    #[test]
    fn hard_negatives_overlap_but_less_than_positives() {
        use crate::blocking::{jaccard, record_tokens};
        let d = build(BenchmarkId::SemiHeter, Scale::Quick, 6);
        let (mut pos, mut neg) = (Vec::new(), Vec::new());
        for lp in d.train.iter().chain(&d.unlabeled) {
            let (l, r) = d.records(lp.pair);
            let sim = jaccard(
                &record_tokens(l, d.left.format),
                &record_tokens(r, d.right.format),
            );
            if lp.label {
                pos.push(sim)
            } else {
                neg.push(sim)
            }
        }
        let pmean = pos.iter().sum::<f64>() / pos.len() as f64;
        let nmean = neg.iter().sum::<f64>() / neg.len() as f64;
        assert!(
            pmean > nmean,
            "positives ({pmean}) not more similar than negatives ({nmean})"
        );
        assert!(nmean > 0.02, "negatives are all trivial: {nmean}");
    }

    #[test]
    fn rel_text_left_is_single_attribute_text() {
        let d = build(BenchmarkId::RelText, Scale::Quick, 8);
        assert!((d.left.mean_arity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geo_heter_right_has_fused_position() {
        let d = build(BenchmarkId::GeoHeter, Scale::Quick, 9);
        let with_pos = d
            .right
            .records
            .iter()
            .filter(|r| r.get("position").is_some())
            .count();
        assert_eq!(with_pos, d.right.records.len());
        assert!(d.right.records.iter().all(|r| r.get("latitude").is_none()));
    }

    #[test]
    fn semi_text_w_is_longer_and_noisier_than_c() {
        let w = build(BenchmarkId::SemiTextW, Scale::Quick, 10);
        let c = build(BenchmarkId::SemiTextC, Scale::Quick, 10);
        let mean_len = |t: &Table| {
            t.records
                .iter()
                .map(|r| r.attrs[0].1.to_text().split_whitespace().count())
                .sum::<usize>() as f64
                / t.len() as f64
        };
        assert!(
            mean_len(&w.right) > mean_len(&c.right),
            "-w text not longer than -c"
        );
    }

    #[test]
    fn full_scale_is_larger() {
        let q = build(BenchmarkId::RelHeter, Scale::Quick, 11);
        let f = build(BenchmarkId::RelHeter, Scale::Full, 11);
        assert!(f.all_labeled() > q.all_labeled());
        assert!(f.train.len() > q.train.len());
    }
}
