//! Vocabulary pools for the synthetic benchmark universes.
//!
//! Each domain draws names from a mixture of small curated lists (for
//! realistic surface forms) and a deterministic syllable generator (for an
//! open vocabulary so entities do not all collide on the same few words).

use rand::Rng;

/// US city names.
pub const CITIES: &[&str] = &[
    "pittsburgh",
    "boston",
    "chicago",
    "seattle",
    "austin",
    "denver",
    "portland",
    "madison",
    "atlanta",
    "houston",
    "phoenix",
    "detroit",
    "columbus",
    "memphis",
    "oakland",
    "tucson",
];

/// Restaurant cuisine labels.
pub const CUISINES: &[&str] = &[
    "italian",
    "french",
    "thai",
    "mexican",
    "japanese",
    "indian",
    "greek",
    "korean",
    "vietnamese",
    "spanish",
    "ethiopian",
    "lebanese",
    "american",
    "chinese",
    "turkish",
];

/// Publication venue acronyms.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "kdd", "cikm", "edbt", "www", "acl", "emnlp", "neurips", "icml",
    "aaai", "ijcai", "sigir", "wsdm", "tkde",
];

/// Book publishers.
pub const PUBLISHERS: &[&str] = &[
    "wiley",
    "springer",
    "oreilly",
    "pearson",
    "addison wesley",
    "mcgraw hill",
    "packt",
    "manning",
    "apress",
    "sams",
    "cambridge press",
    "mit press",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "action",
    "romance",
    "horror",
    "documentary",
    "animation",
    "western",
    "mystery",
    "fantasy",
    "crime",
];

/// Electronics product categories.
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "laptop",
    "monitor",
    "keyboard",
    "printer",
    "router",
    "tablet",
    "camera",
    "headphones",
    "speaker",
    "smartwatch",
    "charger",
    "projector",
];

/// Point-of-interest categories.
pub const POI_CATEGORIES: &[&str] = &[
    "cafe", "museum", "park", "library", "pharmacy", "bakery", "cinema", "gym", "hotel", "gallery",
    "market", "theater",
];

/// Street-name suffixes.
pub const STREET_SUFFIXES: &[&str] = &["st", "ave", "blvd", "rd", "lane", "drive", "way", "plaza"];

/// Person first names.
pub const FIRST_NAMES: &[&str] = &[
    "james", "maria", "wei", "fatima", "ivan", "chen", "sofia", "raj", "yuki", "omar", "elena",
    "kofi", "ana", "lars", "priya", "dmitri", "amara", "hugo", "mei", "tariq",
];

/// Person last names.
pub const LAST_NAMES: &[&str] = &[
    "smith", "garcia", "wang", "mueller", "tanaka", "okafor", "silva", "patel", "kim", "novak",
    "rossi", "haddad", "jensen", "kumar", "lopez", "petrov", "nguyen", "fischer", "costa",
    "yamamoto",
];

/// Research topic nouns for paper titles.
pub const RESEARCH_TOPICS: &[&str] = &[
    "similarity",
    "matching",
    "indexing",
    "query",
    "optimization",
    "learning",
    "embedding",
    "graph",
    "stream",
    "transaction",
    "privacy",
    "sampling",
    "clustering",
    "ranking",
    "provenance",
    "caching",
    "sketching",
    "partitioning",
    "compression",
    "inference",
];

/// Research object nouns for paper titles.
pub const RESEARCH_OBJECTS: &[&str] = &[
    "joins",
    "databases",
    "tables",
    "records",
    "entities",
    "documents",
    "networks",
    "workloads",
    "schemas",
    "tuples",
    "indexes",
    "caches",
    "queries",
    "models",
    "pipelines",
    "catalogs",
];

/// Title adjectives.
pub const ADJECTIVES: &[&str] = &[
    "efficient",
    "scalable",
    "robust",
    "adaptive",
    "incremental",
    "distributed",
    "parallel",
    "approximate",
    "secure",
    "interpretable",
    "unified",
    "lightweight",
    "generalized",
    "practical",
    "optimal",
];

/// Generic marketing filler words.
pub const FILLER_WORDS: &[&str] = &[
    "new", "great", "popular", "classic", "modern", "original", "famous", "local", "premium",
    "special", "daily", "fresh",
];

const CONSONANTS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "st",
    "tr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ia", "ou", "ei"];

/// Generate a pronounceable pseudo-word with `syllables` syllables.
pub fn pseudo_word(rng: &mut impl Rng, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables.max(1) {
        w.push_str(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
        w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    w
}

/// Pick a random element of a slice.
pub fn pick<'a, T: ?Sized>(rng: &mut impl Rng, pool: &'a [&'a T]) -> &'a T {
    pool[rng.gen_range(0..pool.len())]
}

/// A person name "first last".
pub fn person_name(rng: &mut impl Rng) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A paper-like title of `len` words.
pub fn paper_title(rng: &mut impl Rng, len: usize) -> String {
    let mut words = Vec::with_capacity(len);
    words.push(pick(rng, ADJECTIVES).to_string());
    words.push(pick(rng, RESEARCH_TOPICS).to_string());
    while words.len() + 2 < len {
        words.push(pick(rng, RESEARCH_TOPICS).to_string());
    }
    words.push("for".to_string());
    words.push(pick(rng, RESEARCH_OBJECTS).to_string());
    words.join(" ")
}

/// A US-style phone number string.
pub fn phone(rng: &mut impl Rng) -> String {
    format!(
        "{:03}-{:03}-{:04}",
        rng.gen_range(200..999),
        rng.gen_range(200..999),
        rng.gen_range(0..10000)
    )
}

/// A 13-digit ISBN-like number.
pub fn isbn(rng: &mut impl Rng) -> String {
    format!("978{:010}", rng.gen_range(0u64..10_000_000_000))
}

/// A street address "123 word st".
pub fn street_address(rng: &mut impl Rng) -> String {
    format!(
        "{} {} {}",
        rng.gen_range(1..9999),
        pseudo_word(rng, 2),
        pick(rng, STREET_SUFFIXES)
    )
}

/// A date string "mm/dd/yyyy".
pub fn date(rng: &mut impl Rng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.gen_range(1..13),
        rng.gen_range(1..29),
        rng.gen_range(1995..2023)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pseudo_words_are_nonempty_and_deterministic() {
        let a = pseudo_word(&mut StdRng::seed_from_u64(5), 3);
        let b = pseudo_word(&mut StdRng::seed_from_u64(5), 3);
        assert_eq!(a, b);
        assert!(a.len() >= 3);
    }

    #[test]
    fn generators_produce_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(phone(&mut rng).len(), 12);
        assert_eq!(isbn(&mut rng).len(), 13);
        assert!(date(&mut rng).contains('/'));
        assert!(person_name(&mut rng).contains(' '));
        let t = paper_title(&mut rng, 6);
        assert!(t.split_whitespace().count() >= 4);
    }

    #[test]
    fn street_address_ends_with_suffix() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = street_address(&mut rng);
        let last = a.split_whitespace().last().unwrap();
        assert!(STREET_SUFFIXES.contains(&last));
    }
}
