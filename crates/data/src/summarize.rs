//! TF-IDF summarization of long textual entries (paper Appendix F).
//!
//! "A common practice is to truncate the sequences. Nevertheless, the
//! truncation strategy is not a wise choice because the important
//! information for matching is usually not at the beginning … we apply a
//! TF-IDF based summarization technique … which retains non-stopword tokens
//! with high TF-IDF scores."

use std::collections::HashMap;

/// A tiny English stopword list adequate for the synthetic corpora.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "have", "in", "is",
    "it", "its", "of", "on", "or", "that", "the", "this", "to", "was", "were", "which", "with",
    "we", "our", "their", "they",
];

fn is_stopword(tok: &str) -> bool {
    STOPWORDS.contains(&tok)
}

/// Inverse-document-frequency table learned from a corpus of documents.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    idf: HashMap<String, f32>,
    num_docs: usize,
}

impl TfIdf {
    /// Fit IDF weights over an iterator of documents (each document is
    /// tokenized by whitespace).
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a str>) -> Self {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut num_docs = 0usize;
        for doc in docs {
            num_docs += 1;
            let mut seen: Vec<&str> = doc.split_whitespace().collect();
            seen.sort_unstable();
            seen.dedup();
            for tok in seen {
                *df.entry(tok.to_string()).or_insert(0) += 1;
            }
        }
        let idf = df
            .into_iter()
            .map(|(tok, d)| {
                let w = ((1.0 + num_docs as f32) / (1.0 + d as f32)).ln() + 1.0;
                (tok, w)
            })
            .collect();
        TfIdf { idf, num_docs }
    }

    /// Number of documents the IDF table was fitted on.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// IDF weight of a token; unseen tokens get the maximum weight (they are
    /// maximally discriminative).
    pub fn idf(&self, tok: &str) -> f32 {
        match self.idf.get(tok) {
            Some(&w) => w,
            None => ((1.0 + self.num_docs as f32) / 1.0).ln() + 1.0,
        }
    }

    /// Summarize `text` down to at most `max_tokens` tokens, keeping the
    /// non-stopword tokens with the highest TF-IDF scores *in their original
    /// order* (important: the LM still sees a coherent-ish sequence).
    pub fn summarize(&self, text: &str, max_tokens: usize) -> String {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        if tokens.len() <= max_tokens {
            return text.to_string();
        }
        // Term frequencies within this document.
        let mut tf: HashMap<&str, f32> = HashMap::new();
        for &t in &tokens {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        // Score each position. Structural tags are pure scaffolding — they
        // repeat once per attribute, so raw tf×idf would let them crowd out
        // every value token under a tight budget; they score like stopwords.
        // Attribute names occur in every record (minimal IDF) and drop out
        // naturally. What survives is the discriminative *values* (the
        // error analysis in Appendix C shows those, digits included, are
        // what matching hinges on).
        let mut scored: Vec<(usize, f32)> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let score = if is_stopword(t) || t == "[COL]" || t == "[VAL]" {
                    f32::NEG_INFINITY
                } else {
                    tf[t] * self.idf(t)
                };
                (i, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut keep: Vec<usize> = scored.iter().take(max_tokens).map(|&(i, _)| i).collect();
        keep.sort_unstable();
        keep.iter()
            .map(|&i| tokens[i])
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Plain head truncation, the baseline strategy Appendix F argues against.
pub fn truncate(text: &str, max_tokens: usize) -> String {
    text.split_whitespace()
        .take(max_tokens)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_text_is_untouched() {
        let t = TfIdf::fit(["alpha beta", "beta gamma"]);
        assert_eq!(t.summarize("alpha beta", 10), "alpha beta");
    }

    #[test]
    fn summarize_keeps_rare_tokens() {
        // "common" appears in every doc, "zanzibar" in one: under pressure
        // the summary must prefer the discriminative token.
        let docs = [
            "common words here",
            "common words there",
            "common zanzibar words",
        ];
        let t = TfIdf::fit(docs);
        let text = "common zanzibar words here there";
        let s = t.summarize(text, 2);
        assert!(s.contains("zanzibar"), "summary lost the rare token: {s}");
        assert!(
            !s.contains("common"),
            "summary kept the ubiquitous token: {s}"
        );
    }

    #[test]
    fn summarize_preserves_order() {
        let t = TfIdf::fit(["q w e r t y u"]);
        let s = t.summarize("q w e r t y u extra tokens beyond limit", 5);
        let toks: Vec<&str> = s.split_whitespace().collect();
        let orig = "q w e r t y u extra tokens beyond limit";
        let mut last = 0;
        for tok in toks {
            let pos = orig.split_whitespace().position(|t2| t2 == tok).unwrap();
            assert!(pos >= last, "order violated at {tok}");
            last = pos;
        }
    }

    #[test]
    fn summarize_drops_stopwords_first() {
        let t = TfIdf::fit(["the quick brown fox", "the lazy dog"]);
        let s = t.summarize("the the the the quick brown fox jumps over", 4);
        assert!(
            !s.split_whitespace().any(|w| w == "the"),
            "stopword survived: {s}"
        );
    }

    #[test]
    fn structural_tags_lose_to_values_under_pressure() {
        // Tags appear in every document → minimal IDF → dropped first.
        let docs: Vec<String> = (0..10)
            .map(|i| format!("[COL] name [VAL] value{i} [COL] city [VAL] town{i}"))
            .collect();
        let t = TfIdf::fit(docs.iter().map(|s| s.as_str()));
        let s = t.summarize("[COL] name [VAL] value3 [COL] city [VAL] town3", 2);
        assert!(
            s.contains("value3") && s.contains("town3"),
            "values lost: {s}"
        );
        assert!(!s.contains("[COL]"), "tag survived a 2-token budget: {s}");
    }

    #[test]
    fn truncate_takes_head() {
        assert_eq!(truncate("a b c d e", 3), "a b c");
        assert_eq!(truncate("a b", 5), "a b");
    }

    #[test]
    fn unseen_tokens_get_max_idf() {
        let t = TfIdf::fit(["x y", "x z"]);
        assert!(t.idf("never-seen") >= t.idf("x"));
    }
}
