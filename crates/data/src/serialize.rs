//! Entity serialization (paper §2.2), extending Ditto's scheme to
//! generalized entity matching:
//!
//! * structured:      `[COL] attr1 [VAL] val1 … [COL] attrn [VAL] valn`
//! * semi-structured: nested attributes recursively add `[COL]`/`[VAL]` per
//!   level; list attributes concatenate their elements into one string;
//! * textual:         the raw text (already a sequence).

use crate::record::{Format, Record, Value};

/// The special tag opening an attribute name.
pub const COL: &str = "[COL]";
/// The special tag opening an attribute value.
pub const VAL: &str = "[VAL]";

/// Serialize one record according to its table's format.
pub fn serialize(record: &Record, format: Format) -> String {
    match format {
        Format::Textual => {
            // Unstructured entities are sequences originally (§2.2).
            record
                .attrs
                .iter()
                .map(|(_, v)| v.to_text())
                .collect::<Vec<_>>()
                .join(" ")
        }
        Format::Relational => {
            let mut out = String::new();
            for (name, value) in &record.attrs {
                push_pair(&mut out, name, &value.to_text());
            }
            out.trim_end().to_string()
        }
        Format::SemiStructured => {
            let mut out = String::new();
            for (name, value) in &record.attrs {
                serialize_semi(&mut out, name, value);
            }
            out.trim_end().to_string()
        }
    }
}

fn push_pair(out: &mut String, name: &str, value: &str) {
    out.push_str(COL);
    out.push(' ');
    out.push_str(name);
    out.push(' ');
    out.push_str(VAL);
    out.push(' ');
    out.push_str(value);
    out.push(' ');
}

fn serialize_semi(out: &mut String, name: &str, value: &Value) {
    match value {
        // "For nested attributes, we recursively add the [COL] and [VAL]
        // tags along with attribute names and values in each level" (§2.2).
        Value::Nested(fields) => {
            out.push_str(COL);
            out.push(' ');
            out.push_str(name);
            out.push(' ');
            out.push_str(VAL);
            out.push(' ');
            for (k, v) in fields {
                serialize_semi(out, k, v);
            }
        }
        // Lists collapse into one string to bound the sequence length.
        other => push_pair(out, name, &other.to_text()),
    }
}

/// Serialize a candidate pair in the vanilla fine-tuning layout (§2.3):
/// `[CLS] serialize(e) [SEP] serialize(e') [SEP]` — the tokenizer adds the
/// `[CLS]`/`[SEP]` markers, so this helper returns the two bodies.
pub fn serialize_pair(
    left: &Record,
    left_format: Format,
    right: &Record,
    right_format: Format,
) -> (String, String) {
    (serialize(left, left_format), serialize(right, right_format))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_relational_example() -> Record {
        Record::new()
            .with("title", Value::Text("efficient similarity search".into()))
            .with("authors", Value::Text("ronald fagin".into()))
            .with("venue", Value::Text("SIGMOD".into()))
            .with("year", Value::Number(2003.0))
    }

    #[test]
    fn relational_matches_paper_layout() {
        let s = serialize(&paper_relational_example(), Format::Relational);
        assert_eq!(
            s,
            "[COL] title [VAL] efficient similarity search [COL] authors [VAL] ronald fagin \
             [COL] venue [VAL] SIGMOD [COL] year [VAL] 2003"
        );
    }

    #[test]
    fn semi_structured_list_concatenates() {
        let r = Record::new()
            .with("title", Value::Text("efficient similarity search".into()))
            .with("year", Value::Number(2003.0))
            .with(
                "authors",
                Value::List(vec![
                    Value::Text("ronald fagin".into()),
                    Value::Text("ravi kumar".into()),
                    Value::Text("d. sivakumar".into()),
                ]),
            );
        let s = serialize(&r, Format::SemiStructured);
        assert_eq!(
            s,
            "[COL] title [VAL] efficient similarity search [COL] year [VAL] 2003 \
             [COL] authors [VAL] ronald fagin ravi kumar d. sivakumar"
        );
    }

    #[test]
    fn nested_attributes_recurse_with_tags() {
        let r = Record::new().with(
            "publication",
            Value::Nested(vec![
                ("venue".into(), Value::Text("VLDB".into())),
                ("volume".into(), Value::Number(16.0)),
            ]),
        );
        let s = serialize(&r, Format::SemiStructured);
        assert_eq!(
            s,
            "[COL] publication [VAL] [COL] venue [VAL] VLDB [COL] volume [VAL] 16"
        );
    }

    #[test]
    fn textual_records_pass_through() {
        let r = Record::textual("we study the problem of entity matching");
        let s = serialize(&r, Format::Textual);
        assert_eq!(s, "we study the problem of entity matching");
        assert!(!s.contains(COL));
    }

    #[test]
    fn empty_record_serializes_to_empty() {
        assert_eq!(serialize(&Record::new(), Format::Relational), "");
        assert_eq!(serialize(&Record::new(), Format::SemiStructured), "");
    }

    #[test]
    fn serialize_pair_returns_both_sides() {
        let left = paper_relational_example();
        let right = Record::textual("abstract text");
        let (l, r) = serialize_pair(&left, Format::Relational, &right, Format::Textual);
        assert!(l.starts_with("[COL] title"));
        assert_eq!(r, "abstract text");
    }
}
