//! In-domain pretraining corpus construction.
//!
//! The paper starts from RoBERTa-base, whose 160 GB pretraining corpus
//! taught it both (a) the distributional semantics of record-like text and
//! (b) what relation words like "similar"/"different" mean. Our from-scratch
//! mini-LM has to acquire the same two kinds of knowledge from somewhere, so
//! the corpus builder emits:
//!
//! 1. the serialization of every record of both tables (plain MLM text);
//! 2. *unsupervised* relational statements: record pairs judged by a token
//!    overlap heuristic — NOT by gold labels — phrased through the same
//!    surface patterns the prompt templates use ("… they are similar",
//!    "… is different to …").
//!
//! (2) is distant supervision in the classic sense: noisy, label-free, and
//! exactly the kind of signal a web-scale corpus provides a real LM. The
//! gold train/valid/test labels are never consulted.

use crate::blocking::{jaccard, record_tokens, TokenIndex};
use crate::pair::GemDataset;
use crate::serialize::serialize;
use crate::summarize::TfIdf;
use rand::seq::SliceRandom;
use rand::Rng;

/// Relation words to teach. Defaults mirror the PromptEM label-word sets.
#[derive(Debug, Clone)]
pub struct RelationWords {
    /// Words phrased for similar pairs.
    pub positive: Vec<String>,
    /// Words phrased for dissimilar pairs.
    pub negative: Vec<String>,
}

impl Default for RelationWords {
    fn default() -> Self {
        RelationWords {
            positive: vec!["matched".into(), "similar".into(), "relevant".into()],
            negative: vec!["mismatched".into(), "different".into(), "irrelevant".into()],
        }
    }
}

/// Corpus construction parameters.
#[derive(Debug, Clone)]
pub struct CorpusCfg {
    /// Cap on plain record sentences.
    pub max_record_sentences: usize,
    /// Number of relational statements to attempt.
    pub relation_statements: usize,
    /// Jaccard similarity above which a pair is phrased positively.
    pub sim_hi: f64,
    /// Jaccard similarity below which a pair is phrased negatively.
    pub sim_lo: f64,
    /// Token cap per record inside a relational statement.
    pub side_tokens: usize,
}

impl Default for CorpusCfg {
    fn default() -> Self {
        CorpusCfg {
            max_record_sentences: 500,
            relation_statements: 1400,
            sim_hi: 0.35,
            sim_lo: 0.12,
            side_tokens: 16,
        }
    }
}

fn clip_tokens(s: &str, n: usize) -> String {
    s.split_whitespace().take(n).collect::<Vec<_>>().join(" ")
}

/// Build the pretraining corpus for one dataset (gold labels unused).
pub fn build_pretrain_corpus(
    ds: &GemDataset,
    words: &RelationWords,
    cfg: &CorpusCfg,
    rng: &mut impl Rng,
) -> Vec<String> {
    let mut corpus = Vec::new();

    // (1) plain record sentences, alternating sides so both schemas are
    // represented even under the cap.
    let left_ser: Vec<String> = ds
        .left
        .records
        .iter()
        .map(|r| serialize(r, ds.left.format))
        .collect();
    let right_ser: Vec<String> = ds
        .right
        .records
        .iter()
        .map(|r| serialize(r, ds.right.format))
        .collect();
    // Relational statements compare TF-IDF summaries — the same record
    // representation downstream models are tuned on (Appendix F applied
    // uniformly), keeping pretraining and prompting in-distribution.
    let left_tfidf = TfIdf::fit(left_ser.iter().map(|s| s.as_str()));
    let right_tfidf = TfIdf::fit(right_ser.iter().map(|s| s.as_str()));
    let left_sum: Vec<String> = left_ser
        .iter()
        .map(|s| left_tfidf.summarize(s, cfg.side_tokens))
        .collect();
    let right_sum: Vec<String> = right_ser
        .iter()
        .map(|s| right_tfidf.summarize(s, cfg.side_tokens))
        .collect();
    let mut record_sentences: Vec<&String> = left_ser.iter().chain(right_ser.iter()).collect();
    record_sentences.shuffle(rng);
    for s in record_sentences.iter().take(cfg.max_record_sentences) {
        corpus.push((*s).clone());
    }

    // (2a) noised self-pair statements: a record and a *perturbed copy of
    // itself* (typos, abbreviations, dropped tokens) are positives; this is
    // the matching-relevant invariance — "two noisy views of the same
    // content are the same thing" — and is label-free by construction. It
    // also guarantees every relation word enters the vocabulary.
    use crate::synth::noise::{noisy_text, NoiseCfg};
    let mut pos_k = 0usize;
    let mut neg_k = 0usize;
    let n_self = (cfg.relation_statements / 2).max(words.positive.len().max(words.negative.len()));
    for side in 0..2 {
        let pool = if side == 0 { &left_sum } else { &right_sum };
        for _ in 0..n_self / 2 {
            let i = rng.gen_range(0..pool.len());
            let noisy = noisy_text(&pool[i], &NoiseCfg::DIRTY, rng);
            let w = &words.positive[pos_k % words.positive.len()];
            pos_k += 1;
            push_statements(&mut corpus, &pool[i], &noisy, w, cfg);
        }
    }

    // (2b) cross-table statements via token-overlap heuristics: the top
    // blocking candidate is phrased positively when similar enough; *hard*
    // candidates (non-trivial overlap yet low similarity) and random pairs
    // are phrased negatively. Distant supervision: noisy, label-free.
    let index = TokenIndex::build(&ds.right.records, ds.right.format);
    let n_left = ds.left.records.len();
    for _ in 0..cfg.relation_statements {
        let i = rng.gen_range(0..n_left);
        let q = record_tokens(&ds.left.records[i], ds.left.format);
        let candidates = index.candidates(&q, 2, None);
        if let Some(&(j, _)) = candidates.first() {
            let sim = jaccard(&q, index.tokens_of(j));
            if sim >= cfg.sim_hi {
                let w = &words.positive[pos_k % words.positive.len()];
                pos_k += 1;
                push_statements(&mut corpus, &left_sum[i], &right_sum[j], w, cfg);
            }
        }
        // Hard negative: a lower-ranked candidate that still shares tokens
        // but is clearly below the similarity bar.
        if let Some(&(j, _)) = candidates.get(2) {
            let sim = jaccard(&q, index.tokens_of(j));
            if sim <= cfg.sim_lo {
                let w = &words.negative[neg_k % words.negative.len()];
                neg_k += 1;
                push_statements(&mut corpus, &left_sum[i], &right_sum[j], w, cfg);
            }
        }
        // Easy negative: a random record.
        let j = rng.gen_range(0..ds.right.records.len());
        let sim = jaccard(&q, index.tokens_of(j));
        if sim <= cfg.sim_lo {
            let w = &words.negative[neg_k % words.negative.len()];
            neg_k += 1;
            push_statements(&mut corpus, &left_sum[i], &right_sum[j], w, cfg);
        }
    }
    corpus.shuffle(rng);
    corpus
}

/// Emit both template surface forms for one pair and relation word.
fn push_statements(corpus: &mut Vec<String>, a: &str, b: &str, word: &str, cfg: &CorpusCfg) {
    let a = clip_tokens(a, cfg.side_tokens);
    let b = clip_tokens(b, cfg.side_tokens);
    corpus.push(format!("{a} {b} they are {word}"));
    corpus.push(format!("{a} is {word} to {b}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{build, BenchmarkId, Scale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus_for(id: BenchmarkId) -> Vec<String> {
        let ds = build(id, Scale::Quick, 21);
        let mut rng = StdRng::seed_from_u64(22);
        build_pretrain_corpus(
            &ds,
            &RelationWords::default(),
            &CorpusCfg::default(),
            &mut rng,
        )
    }

    #[test]
    fn corpus_is_nonempty_and_capped() {
        let c = corpus_for(BenchmarkId::RelHeter);
        let cfg = CorpusCfg::default();
        assert!(c.len() >= 50, "corpus too small: {}", c.len());
        // Upper bound: record sentences + 2 sentences per self-pair attempt
        // + up to 3 statements (6 sentences) per cross-table iteration.
        let n_self = cfg.relation_statements / 2;
        let cap = cfg.max_record_sentences + 2 * n_self + 6 * cfg.relation_statements;
        assert!(c.len() <= cap, "corpus exceeded cap: {} > {cap}", c.len());
    }

    #[test]
    fn corpus_contains_all_relation_words() {
        let c = corpus_for(BenchmarkId::SemiHomo);
        let joined = c.join(" ");
        for w in [
            "matched",
            "similar",
            "relevant",
            "mismatched",
            "different",
            "irrelevant",
        ] {
            assert!(
                joined.contains(w),
                "relation word '{w}' missing from corpus"
            );
        }
        // Template glue words must be present for the hard templates.
        for w in ["they", "are", "is", "to"] {
            assert!(
                joined.split_whitespace().any(|t| t == w),
                "glue word '{w}' missing"
            );
        }
    }

    #[test]
    fn corpus_never_reads_gold_labels() {
        // Statements are built from table rows only: a dataset with all
        // labels flipped yields the identical corpus.
        let ds = build(BenchmarkId::RelHeter, Scale::Quick, 33);
        let mut flipped = ds.clone();
        for p in flipped.train.iter_mut().chain(flipped.unlabeled.iter_mut()) {
            p.label = !p.label;
        }
        let mk = |d: &crate::pair::GemDataset| {
            let mut rng = StdRng::seed_from_u64(9);
            build_pretrain_corpus(
                d,
                &RelationWords::default(),
                &CorpusCfg::default(),
                &mut rng,
            )
        };
        assert_eq!(mk(&ds), mk(&flipped));
    }

    #[test]
    fn statement_sides_are_clipped() {
        let c = corpus_for(BenchmarkId::SemiTextW);
        let cfg = CorpusCfg::default();
        for s in c.iter().filter(|s| s.contains(" they are ")) {
            let n = s.split_whitespace().count();
            assert!(
                n <= 2 * cfg.side_tokens + 3,
                "statement too long: {n} tokens"
            );
        }
    }
}
