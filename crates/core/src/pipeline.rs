//! End-to-end PromptEM pipeline: corpus → backbone pretraining → encoding →
//! (prompt-)tuning with lightweight self-training → evaluation. This is the
//! public entry point a downstream user calls, and the harness behind every
//! experiment table.

use crate::encode::{encode_dataset, EncodeCfg, EncodedDataset, EncodedPair};
use crate::finetune::FineTuneModel;
use crate::model::{PromptEmModel, PromptOpts};
use crate::selftrain::{lightweight_self_train_with, LstCfg, LstReport};
use crate::trainer::{evaluate, TunableMatcher};
use em_data::corpus::{build_pretrain_corpus, CorpusCfg, RelationWords};
use em_data::pair::GemDataset;
use em_data::PrfScores;
use em_lm::{LmConfig, PretrainCfg, PretrainedLm};
use em_resilience::{ResilienceCfg, ResilienceCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Which model size the backbone uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmSize {
    /// The quick-scale configuration ([`LmConfig::tiny`]).
    Tiny,
    /// The full-scale configuration ([`LmConfig::base`]).
    Base,
}

impl LmSize {
    fn config(self, vocab: usize) -> LmConfig {
        match self {
            LmSize::Tiny => LmConfig::tiny(vocab),
            LmSize::Base => LmConfig::base(vocab),
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PromptEmConfig {
    /// Template/mode/label-word choices.
    pub prompt: PromptOpts,
    /// Self-training configuration (Algorithm 1).
    pub lst: LstCfg,
    /// Serialization/summarization budget.
    pub encode: EncodeCfg,
    /// Backbone pretraining budget.
    pub pretrain: PretrainCfg,
    /// Pretraining corpus construction.
    pub corpus: CorpusCfg,
    /// Backbone size preset.
    pub lm_size: LmSize,
    /// Ablation: prompt-tuning (true) vs vanilla fine-tuning (false,
    /// "PromptEM w/o PT").
    pub use_prompt: bool,
    /// Ablation: lightweight self-training on/off ("PromptEM w/o LST").
    pub use_lst: bool,
    // (see grid_template below)
    /// §5.1: "the continuous template is selected from {T1(·), T2(·)}" by
    /// grid search — when true, a short probe training on each template
    /// picks the better one on the validation set before the full run.
    /// Disabled by the template-choice experiments (Figures 4/5).
    pub grid_template: bool,
    /// Master seed for model initialization and shuffling.
    pub seed: u64,
    /// Crash safety: checkpoint directory, cadence, and resume flag.
    /// `None` (the default) disables checkpointing entirely.
    pub resilience: Option<ResilienceCfg>,
}

impl Default for PromptEmConfig {
    fn default() -> Self {
        PromptEmConfig {
            prompt: PromptOpts::default(),
            lst: LstCfg::quick(),
            encode: EncodeCfg::default(),
            pretrain: PretrainCfg::default(),
            corpus: CorpusCfg::default(),
            lm_size: LmSize::Tiny,
            use_prompt: true,
            use_lst: true,
            grid_template: true,
            seed: 0xE11,
            resilience: None,
        }
    }
}

/// Open the checkpoint stream for one pipeline phase, or `None` when
/// resilience is off (or the directory cannot be created — a checkpointing
/// failure must never take down training).
fn phase_ctx(cfg: &PromptEmConfig, phase: &str) -> Option<ResilienceCtx> {
    let rc = cfg.resilience.as_ref()?;
    match ResilienceCtx::new(rc, phase) {
        Ok(ctx) => Some(ctx),
        Err(e) => {
            em_obs::warn(format!("cannot open checkpoint dir for {phase}: {e}"));
            None
        }
    }
}

/// §5.1's template grid search: train a reduced-budget teacher with each
/// continuous template and return the template with the best validation F1.
fn select_template(
    backbone: &Arc<PretrainedLm>,
    encoded: &EncodedDataset,
    cfg: &PromptEmConfig,
) -> em_lm::prompt::TemplateId {
    use em_lm::prompt::TemplateId;
    let mut probe_cfg = cfg.lst.teacher.clone();
    probe_cfg.epochs = (probe_cfg.epochs / 2).max(2);
    let mut best = (TemplateId::T1, -1.0f64);
    for template in [TemplateId::T1, TemplateId::T2] {
        let mut opts = cfg.prompt.clone();
        opts.template = template;
        let mut probe = PromptEmModel::new(backbone.clone(), opts, cfg.seed ^ 0x9D);
        let report = probe.train(&encoded.train, &encoded.valid, &probe_cfg, None);
        if report.best_valid_f1 > best.1 {
            best = (template, report.best_valid_f1);
        }
    }
    best.0
}

/// The outcome of one end-to-end run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Dataset name.
    pub dataset: String,
    /// Test-set precision/recall/F1.
    pub scores: PrfScores,
    /// Binary predictions over the test split, index-aligned.
    pub test_predictions: Vec<bool>,
    /// Self-training diagnostics.
    pub lst: LstReport,
    /// Wall-clock seconds of the tuning phase (pretraining excluded — the
    /// paper's Table 4 likewise measures method training time, with the
    /// off-the-shelf RoBerta given).
    pub train_secs: f64,
    /// Wall-clock seconds of backbone pretraining (0 when reused).
    pub pretrain_secs: f64,
}

/// Pretrain a backbone LM for one dataset. Every method that "uses a
/// pre-trained LM" shares a clone of this artifact, mirroring how all the
/// paper's LM baselines share RoBERTa-base.
pub fn pretrain_backbone(ds: &GemDataset, cfg: &PromptEmConfig) -> Arc<PretrainedLm> {
    let _span = em_obs::span_with(em_obs::names::SPAN_PRETRAIN, ds.name.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0FFEE);
    let corpus = build_pretrain_corpus(ds, &RelationWords::default(), &cfg.corpus, &mut rng);
    let size = cfg.lm_size;
    let ctx = phase_ctx(cfg, "pretrain");
    Arc::new(PretrainedLm::pretrain_resilient(
        &corpus,
        |v| size.config(v),
        &cfg.pretrain,
        cfg.seed ^ 0xBACB,
        ctx.as_ref(),
    ))
}

/// Encode a dataset with a given backbone's tokenizer.
pub fn encode_with(
    ds: &GemDataset,
    backbone: &PretrainedLm,
    cfg: &PromptEmConfig,
) -> EncodedDataset {
    let _span = em_obs::span_with(em_obs::names::SPAN_ENCODE, ds.name.clone());
    encode_dataset(ds, &backbone.tokenizer, &cfg.encode)
}

fn tune_and_eval<M: TunableMatcher>(
    proto: M,
    encoded: &EncodedDataset,
    cfg: &PromptEmConfig,
) -> (PrfScores, Vec<bool>, LstReport, f64, M) {
    let start = em_obs::Stopwatch::new();
    let (mut model, report) = if cfg.use_lst {
        let ctx = phase_ctx(cfg, "selftrain");
        lightweight_self_train_with(
            &proto,
            &encoded.train,
            &encoded.valid,
            &encoded.unlabeled,
            Some(&encoded.unlabeled_gold),
            &cfg.lst,
            ctx.as_ref(),
        )
    } else {
        // "PromptEM w/o LST": teacher training only.
        let mut model = proto.fresh(cfg.lst.seed);
        let report = LstReport {
            teacher: model.train(&encoded.train, &encoded.valid, &cfg.lst.teacher, None),
            ..Default::default()
        };
        (model, report)
    };
    let secs = start.secs();
    let scores = evaluate(&mut model, &encoded.test);
    let pairs: Vec<crate::encode::EncodedPair> =
        encoded.test.iter().map(|e| e.pair.clone()).collect();
    let predictions = model.predict(&pairs);
    (scores, predictions, report, secs, model)
}

/// One decision from [`TrainedMatcher::match_batch`]: the match probability
/// and the thresholded binary call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchDecision {
    /// `P(match)` from the tape-free forward.
    pub proba: f32,
    /// `proba > threshold` at the calibrated threshold.
    pub is_match: bool,
}

/// The tuned matcher a pipeline run produced, ready for inference. The
/// serving path keeps one of these alive across requests; cloning
/// snapshots the whole model so supervisor restarts hand replacement
/// workers an identical-deciding copy.
#[derive(Clone)]
pub enum TrainedMatcher {
    /// The prompt-tuned model (`use_prompt = true`).
    Prompt(Box<PromptEmModel>),
    /// The fine-tuned ablation model (`use_prompt = false`).
    FineTune(Box<FineTuneModel>),
}

impl TrainedMatcher {
    /// The calibrated decision threshold.
    pub fn threshold(&self) -> f32 {
        match self {
            TrainedMatcher::Prompt(m) => m.threshold(),
            TrainedMatcher::FineTune(m) => m.threshold(),
        }
    }

    /// Match probabilities over a batch of pairs via the tape-free path
    /// (`NoGradTape`; values are bit-identical regardless of batch
    /// composition or thread count — every row-wise kernel computes each
    /// output row independently).
    pub fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
        match self {
            TrainedMatcher::Prompt(m) => m.predict_proba(pairs),
            TrainedMatcher::FineTune(m) => m.predict_proba(pairs),
        }
    }

    /// The batch-of-pairs serving entry point: one coalesced tape-free
    /// forward over `pairs`, returning probability + thresholded decision
    /// per pair.
    pub fn match_batch(&mut self, pairs: &[EncodedPair]) -> Vec<MatchDecision> {
        let t = self.threshold();
        self.predict_proba(pairs)
            .into_iter()
            .map(|proba| MatchDecision {
                proba,
                is_match: proba > t,
            })
            .collect()
    }
}

/// A [`RunResult`] bundled with the trained model that produced it — what
/// `promptem serve` needs: train once, then answer requests from the
/// retained matcher with decisions bit-identical to the offline run.
pub struct TrainedRun {
    /// The ordinary run outcome (scores, predictions, timings).
    pub result: RunResult,
    /// The tuned matcher, retained for inference.
    pub matcher: TrainedMatcher,
}

/// Run the pipeline on an already-pretrained backbone.
pub fn run_with_backbone(
    backbone: Arc<PretrainedLm>,
    ds: &GemDataset,
    cfg: &PromptEmConfig,
) -> RunResult {
    let encoded = encode_with(ds, &backbone, cfg);
    run_encoded(backbone, &encoded, cfg)
}

/// Run the pipeline on an already-encoded dataset (lets the harness share
/// encodings across method variants).
pub fn run_encoded(
    backbone: Arc<PretrainedLm>,
    encoded: &EncodedDataset,
    cfg: &PromptEmConfig,
) -> RunResult {
    run_encoded_retained(backbone, encoded, cfg).result
}

/// [`run_encoded`] that also hands back the trained matcher instead of
/// dropping it — the serving path's way to get bit-identical inference
/// without re-running training.
pub fn run_encoded_retained(
    backbone: Arc<PretrainedLm>,
    encoded: &EncodedDataset,
    cfg: &PromptEmConfig,
) -> TrainedRun {
    let _span = em_obs::span_with(em_obs::names::SPAN_TUNE, encoded.name.clone());
    let (scores, test_predictions, lst, train_secs, matcher) = if cfg.use_prompt {
        let mut opts = cfg.prompt.clone();
        let mut probe_secs = 0.0;
        if cfg.grid_template {
            let t0 = em_obs::Stopwatch::new();
            let _span = em_obs::span(em_obs::names::SPAN_GRID_TEMPLATE);
            opts.template = select_template(&backbone, encoded, cfg);
            em_nn::tape::flush_op_stats();
            probe_secs = t0.secs();
        }
        let proto = PromptEmModel::new(backbone, opts, cfg.seed);
        let (scores, preds, lst, secs, model) = tune_and_eval(proto, encoded, cfg);
        // The grid search is part of PromptEM's training budget (Table 4).
        (
            scores,
            preds,
            lst,
            secs + probe_secs,
            TrainedMatcher::Prompt(Box::new(model)),
        )
    } else {
        let proto = FineTuneModel::new(backbone, cfg.seed);
        let (scores, preds, lst, secs, model) = tune_and_eval(proto, encoded, cfg);
        (
            scores,
            preds,
            lst,
            secs,
            TrainedMatcher::FineTune(Box::new(model)),
        )
    };
    // Residual tape ops (non-LST training, evaluation, prediction) land on
    // the tune span itself rather than vanishing unattributed.
    em_nn::tape::flush_op_stats();
    // Record the final test score as a gauge so a shutdown metrics flush
    // makes the trace self-contained for `promptem report`.
    em_obs::metrics::gauge("core_test_f1", &[("dataset", &encoded.name)]).set(scores.f1);
    TrainedRun {
        result: RunResult {
            dataset: encoded.name.clone(),
            scores,
            test_predictions,
            lst,
            train_secs,
            pretrain_secs: 0.0,
        },
        matcher,
    }
}

/// The one-call entry point: pretrain a backbone and run PromptEM.
pub fn run(ds: &GemDataset, cfg: &PromptEmConfig) -> RunResult {
    let start = em_obs::Stopwatch::new();
    let backbone = pretrain_backbone(ds, cfg);
    let pretrain_secs = start.secs();
    let mut result = run_with_backbone(backbone, ds, cfg);
    result.pretrain_secs = pretrain_secs;
    result
}

/// [`run`] that also returns the trained matcher and the pair codec —
/// everything `promptem serve` needs to answer requests over arbitrary
/// record pairs with decisions bit-identical to this offline run.
pub fn run_trained(ds: &GemDataset, cfg: &PromptEmConfig) -> (TrainedRun, crate::PairCodec) {
    let start = em_obs::Stopwatch::new();
    let backbone = pretrain_backbone(ds, cfg);
    let pretrain_secs = start.secs();
    let encoded = encode_with(ds, &backbone, cfg);
    let codec = crate::PairCodec::build(ds, &backbone.tokenizer, &cfg.encode);
    let mut trained = run_encoded_retained(backbone, &encoded, cfg);
    trained.result.pretrain_secs = pretrain_secs;
    (trained, codec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::synth::{build, BenchmarkId, Scale};

    fn fast_cfg() -> PromptEmConfig {
        PromptEmConfig {
            lst: LstCfg {
                teacher: crate::trainer::TrainCfg {
                    epochs: 2,
                    ..Default::default()
                },
                student: crate::trainer::TrainCfg {
                    epochs: 2,
                    ..Default::default()
                },
                pseudo: crate::pseudo::PseudoCfg {
                    passes: 2,
                    ..Default::default()
                },
                ..LstCfg::quick()
            },
            pretrain: PretrainCfg {
                epochs: 1,
                max_steps: 40,
                ..Default::default()
            },
            corpus: CorpusCfg {
                max_record_sentences: 120,
                relation_statements: 60,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_on_rel_heter() {
        let ds = build(BenchmarkId::RelHeter, Scale::Quick, 99);
        let result = run(&ds, &fast_cfg());
        assert_eq!(result.dataset, "REL-HETER");
        assert!(result.scores.f1 >= 0.0 && result.scores.f1 <= 100.0);
        assert!(result.train_secs > 0.0);
        assert!(result.pretrain_secs > 0.0);
    }

    #[test]
    fn ablations_change_the_path() {
        let ds = build(BenchmarkId::RelHeter, Scale::Quick, 98);
        let base = fast_cfg();
        let backbone = pretrain_backbone(&ds, &base);
        let encoded = encode_with(&ds, &backbone, &base);

        let no_lst = PromptEmConfig {
            use_lst: false,
            ..base.clone()
        };
        let r = run_encoded(backbone.clone(), &encoded, &no_lst);
        assert!(
            r.lst.pseudo_selected.is_empty(),
            "w/o LST must not pseudo-label"
        );

        let no_pt = PromptEmConfig {
            use_prompt: false,
            ..base.clone()
        };
        let r2 = run_encoded(backbone, &encoded, &no_pt);
        assert!(r2.scores.f1.is_finite());
    }
}
