//! Attribute-level attribution for match decisions: leave-one-attribute-out
//! importance. Appendix C's error analysis argues digit attributes
//! (ISBN, dates) are decisive but under-used by LMs — this module measures
//! that per pair: how much does P(match) move when one attribute is
//! removed from a side?

use crate::encode::{EncodeCfg, EncodedPair};
use crate::trainer::TunableMatcher;
use em_data::record::{Format, Record};
use em_data::serialize::serialize;
use em_data::summarize::TfIdf;
use em_lm::Tokenizer;

/// Importance of one attribute for one pair's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeImportance {
    /// "left:{name}" or "right:{name}".
    pub attribute: String,
    /// P(match) with the attribute present minus with it removed.
    /// Positive = the attribute pushes toward "match".
    pub delta: f32,
}

/// Encode one record side under the pipeline's rules.
fn encode_side(
    record: &Record,
    format: Format,
    tokenizer: &Tokenizer,
    cfg: &EncodeCfg,
) -> Vec<usize> {
    let raw = serialize(record, format);
    let text = if cfg.summarize_text && raw.split_whitespace().count() > cfg.side_tokens {
        // Single-document TF-IDF degenerates to TF ordering, which is still
        // a reasonable per-record summary for attribution purposes.
        TfIdf::fit([raw.as_str()]).summarize(&raw, cfg.side_tokens)
    } else {
        raw
    };
    let mut ids = tokenizer.encode(&text);
    ids.truncate(cfg.side_tokens);
    ids
}

fn without_attr(record: &Record, name: &str) -> Record {
    Record {
        attrs: record
            .attrs
            .iter()
            .filter(|(k, _)| k != name)
            .cloned()
            .collect(),
    }
}

/// Leave-one-attribute-out importances for a candidate pair, sorted by
/// |delta| descending.
///
/// ```no_run
/// use promptem::explain::attribute_importance;
/// use promptem::model::{PromptEmModel, PromptOpts};
/// use promptem::pipeline::{pretrain_backbone, PromptEmConfig};
/// use em_data::synth::{build, BenchmarkId, Scale};
///
/// let ds = build(BenchmarkId::SemiHeter, Scale::Quick, 1);
/// let cfg = PromptEmConfig::default();
/// let backbone = pretrain_backbone(&ds, &cfg);
/// let mut model = PromptEmModel::new(backbone.clone(), PromptOpts::default(), 1);
/// let pair = ds.test[0].pair;
/// let (l, r) = ds.records(pair);
/// for imp in attribute_importance(
///     &mut model, &backbone.tokenizer,
///     l, ds.left.format, r, ds.right.format, &cfg.encode,
/// ) {
///     println!("{}: {:+.3}", imp.attribute, imp.delta);
/// }
/// ```
#[allow(clippy::too_many_arguments)]
pub fn attribute_importance<M: TunableMatcher>(
    model: &mut M,
    tokenizer: &Tokenizer,
    left: &Record,
    left_format: Format,
    right: &Record,
    right_format: Format,
    cfg: &EncodeCfg,
) -> Vec<AttributeImportance> {
    let base_pair = EncodedPair {
        ids_a: encode_side(left, left_format, tokenizer, cfg),
        ids_b: encode_side(right, right_format, tokenizer, cfg),
    };
    // Build every ablated variant, then score them in one batch.
    let mut names = Vec::new();
    let mut variants = vec![base_pair.clone()];
    for (k, _) in &left.attrs {
        names.push(format!("left:{k}"));
        variants.push(EncodedPair {
            ids_a: encode_side(&without_attr(left, k), left_format, tokenizer, cfg),
            ids_b: base_pair.ids_b.clone(),
        });
    }
    for (k, _) in &right.attrs {
        names.push(format!("right:{k}"));
        variants.push(EncodedPair {
            ids_a: base_pair.ids_a.clone(),
            ids_b: encode_side(&without_attr(right, k), right_format, tokenizer, cfg),
        });
    }
    let probs = model.predict_proba(&variants);
    let base = probs[0];
    let mut out: Vec<AttributeImportance> = names
        .into_iter()
        .zip(probs.into_iter().skip(1))
        .map(|(attribute, p)| AttributeImportance {
            attribute,
            delta: base - p,
        })
        .collect();
    out.sort_by(|a, b| {
        b.delta
            .abs()
            .partial_cmp(&a.delta.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{PruneCfg, TrainCfg, TrainReport};
    use em_data::record::Value;

    /// Stub model whose match probability is the token-id Jaccard overlap of
    /// the pair — so removing a shared attribute must reduce P(match).
    struct OverlapStub;

    impl TunableMatcher for OverlapStub {
        fn fresh(&self, _: u64) -> Self {
            OverlapStub
        }
        fn train(
            &mut self,
            _: &[crate::encode::Example],
            _: &[crate::encode::Example],
            _: &TrainCfg,
            _: Option<&PruneCfg>,
        ) -> TrainReport {
            Default::default()
        }
        fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
            pairs
                .iter()
                .map(|p| {
                    let a: std::collections::HashSet<_> = p.ids_a.iter().collect();
                    let b: std::collections::HashSet<_> = p.ids_b.iter().collect();
                    if a.is_empty() && b.is_empty() {
                        return 0.0;
                    }
                    a.intersection(&b).count() as f32 / a.union(&b).count().max(1) as f32
                })
                .collect()
        }
        fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
            (0..passes).map(|_| self.predict_proba(pairs)).collect()
        }
        fn set_threshold(&mut self, _: f32) {}
        fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
            pairs.iter().map(|_| vec![0.0]).collect()
        }
    }

    fn tokenizer() -> Tokenizer {
        Tokenizer::fit(
            ["[COL] name [VAL] blue cafe [COL] city [VAL] boston [COL] isbn [VAL] 1234"],
            1,
        )
    }

    #[test]
    fn shared_attribute_has_positive_importance() {
        let tok = tokenizer();
        let left = Record::new()
            .with("name", Value::Text("blue cafe".into()))
            .with("city", Value::Text("boston".into()));
        let right = Record::new()
            .with("name", Value::Text("blue cafe".into()))
            .with("city", Value::Text("austin".into()));
        let mut model = OverlapStub;
        let imp = attribute_importance(
            &mut model,
            &tok,
            &left,
            Format::Relational,
            &right,
            Format::Relational,
            &EncodeCfg {
                summarize_text: false,
                side_tokens: 32,
            },
        );
        let name_imp = imp.iter().find(|i| i.attribute == "left:name").unwrap();
        assert!(
            name_imp.delta > 0.0,
            "removing the shared name should drop P(match)"
        );
        // The ranking puts an informative attribute first.
        assert!(imp[0].delta.abs() >= imp.last().unwrap().delta.abs());
    }

    #[test]
    fn disagreeing_attribute_has_negative_or_small_importance() {
        let tok = tokenizer();
        let left = Record::new()
            .with("name", Value::Text("blue cafe".into()))
            .with("isbn", Value::Text("1234".into()));
        let right = Record::new()
            .with("name", Value::Text("blue cafe".into()))
            .with("isbn", Value::Text("9999".into()));
        let mut model = OverlapStub;
        let imp = attribute_importance(
            &mut model,
            &tok,
            &left,
            Format::Relational,
            &right,
            Format::Relational,
            &EncodeCfg {
                summarize_text: false,
                side_tokens: 32,
            },
        );
        // The agreeing name contributes far more to the match score than the
        // disagreeing ISBN (whose only shared token is the attribute name
        // itself), so its leave-out delta must dominate.
        let isbn = imp.iter().find(|i| i.attribute == "left:isbn").unwrap();
        let name = imp.iter().find(|i| i.attribute == "left:name").unwrap();
        assert!(
            name.delta > isbn.delta,
            "agreeing attribute should matter more: name {} vs isbn {}",
            name.delta,
            isbn.delta
        );
    }

    #[test]
    fn covers_every_attribute_of_both_sides() {
        let tok = tokenizer();
        let left = Record::new()
            .with("a", Value::Text("x".into()))
            .with("b", Value::Text("y".into()));
        let right = Record::new().with("c", Value::Text("z".into()));
        let mut model = OverlapStub;
        let imp = attribute_importance(
            &mut model,
            &tok,
            &left,
            Format::Relational,
            &right,
            Format::Relational,
            &EncodeCfg::default(),
        );
        assert_eq!(imp.len(), 3);
        let names: Vec<&str> = imp.iter().map(|i| i.attribute.as_str()).collect();
        for n in ["left:a", "left:b", "right:c"] {
            assert!(names.contains(&n), "{n} missing");
        }
    }
}
