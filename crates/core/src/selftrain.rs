//! Lightweight Self-Training — Algorithm 1 of the paper.
//!
//! A teacher is trained on the labeled set, pseudo-labels are selected from
//! the unlabeled pool by uncertainty (§4.2), the labeled set is augmented,
//! and a student is trained on it with dynamic data pruning (§4.3). The
//! best student on the validation set is returned. The whole loop is
//! generic over [`TunableMatcher`], which is what makes LST "general enough
//! to incorporate with other approaches" (§4.1).

use crate::encode::{EncodedPair, Example};
use crate::pseudo::{apply_pseudo_labels, pseudo_label_quality, select_pseudo_labels, PseudoCfg};
use crate::trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};

/// Configuration of the self-training loop.
#[derive(Debug, Clone)]
pub struct LstCfg {
    /// `Iter` in Algorithm 1 (the paper fixes it to 1 in experiments).
    pub iterations: usize,
    /// Teacher training budget.
    pub teacher: TrainCfg,
    /// Student training budget.
    pub student: TrainCfg,
    /// Pseudo-label selection settings.
    pub pseudo: PseudoCfg,
    /// Dynamic data pruning for the student; `None` = "PromptEM w/o DDP".
    pub prune: Option<PruneCfg>,
    /// Seed for teacher/student re-initialization.
    pub seed: u64,
}

impl Default for LstCfg {
    fn default() -> Self {
        Self::quick()
    }
}

impl LstCfg {
    /// Single-core-friendly budget (the default experiment scale).
    pub fn quick() -> Self {
        LstCfg {
            iterations: 1,
            teacher: TrainCfg {
                epochs: 10,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 12,
                ..Default::default()
            },
            pseudo: PseudoCfg::default(),
            prune: Some(PruneCfg {
                every: 3,
                e_r: 0.2,
                passes: 10,
            }),
            seed: 0x157,
        }
    }

    /// The paper's settings (§5.1): teacher 20 epochs, student 30, prune
    /// every 8 epochs, 10 MC-Dropout passes.
    pub fn paper() -> Self {
        LstCfg {
            iterations: 1,
            teacher: TrainCfg {
                epochs: 20,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 30,
                ..Default::default()
            },
            pseudo: PseudoCfg {
                passes: 10,
                ..Default::default()
            },
            prune: Some(PruneCfg {
                every: 8,
                e_r: 0.2,
                passes: 10,
            }),
            seed: 0x157,
        }
    }
}

/// What happened during one LST run.
#[derive(Debug, Clone, Default)]
pub struct LstReport {
    /// Last iteration's teacher training report.
    pub teacher: TrainReport,
    /// Last iteration's student training report.
    pub student: TrainReport,
    /// Pseudo-labels selected per iteration.
    pub pseudo_selected: Vec<usize>,
    /// (TPR, TNR) of each iteration's pseudo-labels, when gold labels were
    /// supplied for auditing.
    pub pseudo_quality: Vec<(f64, f64)>,
    /// Training examples removed by dynamic data pruning.
    pub pruned: usize,
}

/// Run Algorithm 1. `proto` supplies `fresh()` re-initializations; `gold`
/// (optional) is used only to audit pseudo-label quality for Table 5.
///
/// ```no_run
/// use promptem::model::{PromptEmModel, PromptOpts};
/// use promptem::selftrain::{lightweight_self_train, LstCfg};
/// use promptem::pipeline::{pretrain_backbone, encode_with, PromptEmConfig};
/// use em_data::synth::{build, BenchmarkId, Scale};
///
/// let ds = build(BenchmarkId::SemiHomo, Scale::Quick, 1);
/// let cfg = PromptEmConfig::default();
/// let backbone = pretrain_backbone(&ds, &cfg);
/// let enc = encode_with(&ds, &backbone, &cfg);
/// let proto = PromptEmModel::new(backbone, PromptOpts::default(), 7);
/// let (student, report) = lightweight_self_train(
///     &proto, &enc.train, &enc.valid, &enc.unlabeled,
///     Some(&enc.unlabeled_gold), &LstCfg::quick(),
/// );
/// println!("selected {:?} pseudo-labels", report.pseudo_selected);
/// # let _ = student;
/// ```
pub fn lightweight_self_train<M: TunableMatcher>(
    proto: &M,
    train: &[Example],
    valid: &[Example],
    unlabeled: &[EncodedPair],
    gold: Option<&[bool]>,
    cfg: &LstCfg,
) -> (M, LstReport) {
    let mut d_l: Vec<Example> = train.to_vec();
    let mut d_u: Vec<EncodedPair> = unlabeled.to_vec();
    let mut d_u_gold: Option<Vec<bool>> = gold.map(|g| g.to_vec());
    let mut report = LstReport::default();
    let mut best: Option<(M, f64)> = None;

    let _lst_span = em_obs::span(em_obs::names::SPAN_LST);
    for iter in 0..cfg.iterations.max(1) {
        let _iter_span = em_obs::span_with(em_obs::names::SPAN_LST_ITER, format!("iter {iter}"));
        // Lines 2-4: fresh teacher trained on D_L.
        let mut teacher = proto.fresh(cfg.seed.wrapping_add(iter as u64 * 2));
        {
            let _span = em_obs::span(em_obs::names::SPAN_TEACHER);
            report.teacher = teacher.train(&d_l, valid, &cfg.teacher, None);
        }

        // Lines 5-8: uncertainty-aware pseudo-label selection.
        let selected = {
            let _span = em_obs::span(em_obs::names::SPAN_PSEUDO_SELECT);
            select_pseudo_labels(&mut teacher, &d_u, &cfg.pseudo)
        };
        report.pseudo_selected.push(selected.len());
        let mut quality = None;
        if let Some(g) = &d_u_gold {
            let q = pseudo_label_quality(&selected, g);
            report.pseudo_quality.push(q);
            quality = Some(q);
        }
        em_obs::pseudo_select(
            selected.len() as u64,
            quality.map(|(tpr, _)| tpr),
            quality.map(|(_, tnr)| tnr),
        );
        let (pseudo_examples, consumed) = apply_pseudo_labels(&d_u, &selected);
        d_l.extend(pseudo_examples);
        remove_indices(&mut d_u, &consumed);
        if let Some(g) = &mut d_u_gold {
            remove_indices(g, &consumed);
        }

        // Lines 9-15: fresh student trained on the augmented D_L with
        // dynamic data pruning.
        let mut student = proto.fresh(cfg.seed.wrapping_add(iter as u64 * 2 + 1));
        {
            let _span = em_obs::span(em_obs::names::SPAN_STUDENT);
            report.student = student.train(&d_l, valid, &cfg.student, cfg.prune.as_ref());
        }
        report.pruned += report.student.pruned;

        // Line 16: keep the best student on the validation set.
        let f1 = crate::trainer::evaluate(&mut student, valid).f1;
        match &best {
            Some((_, best_f1)) if *best_f1 >= f1 => {}
            _ => best = Some((student, f1)),
        }
    }
    // lint:allow(unwrap) — the loop body runs at least once
    (best.expect("at least one iteration").0, report)
}

/// Remove elements at `indices` (any order) from `v`, preserving the order
/// of survivors.
fn remove_indices<T>(v: &mut Vec<T>, indices: &[usize]) {
    if indices.is_empty() {
        return;
    }
    let mut drop = vec![false; v.len()];
    for &i in indices {
        drop[i] = true;
    }
    let mut keep_iter = drop.into_iter();
    // lint:allow(unwrap) — the mask was built to v.len()
    v.retain(|_| !keep_iter.next().unwrap());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PromptEmModel, PromptOpts};
    use crate::testutil::{tiny_backbone, toy_examples};
    use crate::trainer::evaluate;

    #[test]
    fn remove_indices_preserves_order() {
        let mut v = vec![10, 11, 12, 13, 14];
        remove_indices(&mut v, &[3, 0]);
        assert_eq!(v, vec![11, 12, 14]);
        remove_indices(&mut v, &[]);
        assert_eq!(v, vec![11, 12, 14]);
    }

    #[test]
    fn lst_runs_and_moves_pseudo_labels() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 24, 10);
        // Build an unlabeled pool from more toy examples.
        let (extra, _) = toy_examples(&backbone, 40, 11);
        let unlabeled: Vec<_> = extra.iter().map(|e| e.pair.clone()).collect();
        let gold: Vec<bool> = extra.iter().map(|e| e.label).collect();

        let proto = PromptEmModel::new(backbone, PromptOpts::default(), 12);
        let cfg = LstCfg {
            teacher: TrainCfg {
                epochs: 3,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 3,
                ..Default::default()
            },
            pseudo: PseudoCfg {
                u_r: 0.2,
                passes: 3,
                ..Default::default()
            },
            prune: Some(PruneCfg {
                every: 2,
                e_r: 0.1,
                passes: 2,
            }),
            ..Default::default()
        };
        let (mut student, report) =
            lightweight_self_train(&proto, &train, &valid, &unlabeled, Some(&gold), &cfg);
        assert_eq!(report.pseudo_selected.len(), 1);
        assert_eq!(report.pseudo_selected[0], 6); // 20% of 30... u_r * |D_U|
        assert_eq!(report.pseudo_quality.len(), 1);
        let f1 = evaluate(&mut student, &valid).f1;
        assert!(f1.is_finite());
    }

    #[test]
    fn lst_selected_count_follows_u_r() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 16, 13);
        let (extra, _) = toy_examples(&backbone, 20, 14);
        let unlabeled: Vec<_> = extra.iter().map(|e| e.pair.clone()).collect();
        let proto = PromptEmModel::new(backbone, PromptOpts::default(), 15);
        let cfg = LstCfg {
            teacher: TrainCfg {
                epochs: 1,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 1,
                ..Default::default()
            },
            pseudo: PseudoCfg {
                u_r: 0.5,
                passes: 2,
                ..Default::default()
            },
            prune: None,
            ..Default::default()
        };
        let (_, report) = lightweight_self_train(&proto, &train, &valid, &unlabeled, None, &cfg);
        assert_eq!(
            report.pseudo_selected[0],
            (unlabeled.len() as f64 * 0.5).round() as usize
        );
        assert!(report.pseudo_quality.is_empty());
        assert_eq!(report.pruned, 0);
    }
}
