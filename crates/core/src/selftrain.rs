//! Lightweight Self-Training — Algorithm 1 of the paper.
//!
//! A teacher is trained on the labeled set, pseudo-labels are selected from
//! the unlabeled pool by uncertainty (§4.2), the labeled set is augmented,
//! and a student is trained on it with dynamic data pruning (§4.3). The
//! best student on the validation set is returned. The whole loop is
//! generic over [`TunableMatcher`], which is what makes LST "general enough
//! to incorporate with other approaches" (§4.1).

use crate::encode::{EncodedPair, Example};
use crate::pseudo::{apply_pseudo_labels, pseudo_label_quality, select_pseudo_labels, PseudoCfg};
use crate::resume::{LstCursor, MatcherState, SkippedTraining, Stage};
use crate::trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};
use em_resilience::{wire, Checkpoint, ResilienceCtx};

/// Configuration of the self-training loop.
#[derive(Debug, Clone)]
pub struct LstCfg {
    /// `Iter` in Algorithm 1 (the paper fixes it to 1 in experiments).
    pub iterations: usize,
    /// Teacher training budget.
    pub teacher: TrainCfg,
    /// Student training budget.
    pub student: TrainCfg,
    /// Pseudo-label selection settings.
    pub pseudo: PseudoCfg,
    /// Dynamic data pruning for the student; `None` = "PromptEM w/o DDP".
    pub prune: Option<PruneCfg>,
    /// Seed for teacher/student re-initialization.
    pub seed: u64,
}

impl Default for LstCfg {
    fn default() -> Self {
        Self::quick()
    }
}

impl LstCfg {
    /// Single-core-friendly budget (the default experiment scale).
    pub fn quick() -> Self {
        LstCfg {
            iterations: 1,
            teacher: TrainCfg {
                epochs: 10,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 12,
                ..Default::default()
            },
            pseudo: PseudoCfg::default(),
            prune: Some(PruneCfg {
                every: 3,
                e_r: 0.2,
                passes: 10,
            }),
            seed: 0x157,
        }
    }

    /// The paper's settings (§5.1): teacher 20 epochs, student 30, prune
    /// every 8 epochs, 10 MC-Dropout passes.
    pub fn paper() -> Self {
        LstCfg {
            iterations: 1,
            teacher: TrainCfg {
                epochs: 20,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 30,
                ..Default::default()
            },
            pseudo: PseudoCfg {
                passes: 10,
                ..Default::default()
            },
            prune: Some(PruneCfg {
                every: 8,
                e_r: 0.2,
                passes: 10,
            }),
            seed: 0x157,
        }
    }
}

/// What happened during one LST run.
#[derive(Debug, Clone, Default)]
pub struct LstReport {
    /// Last iteration's teacher training report.
    pub teacher: TrainReport,
    /// Last iteration's student training report.
    pub student: TrainReport,
    /// Pseudo-labels selected per iteration.
    pub pseudo_selected: Vec<usize>,
    /// (TPR, TNR) of each iteration's pseudo-labels, when gold labels were
    /// supplied for auditing.
    pub pseudo_quality: Vec<(f64, f64)>,
    /// Training examples removed by dynamic data pruning.
    pub pruned: usize,
}

/// Run Algorithm 1. `proto` supplies `fresh()` re-initializations; `gold`
/// (optional) is used only to audit pseudo-label quality for Table 5.
///
/// ```no_run
/// use promptem::model::{PromptEmModel, PromptOpts};
/// use promptem::selftrain::{lightweight_self_train, LstCfg};
/// use promptem::pipeline::{pretrain_backbone, encode_with, PromptEmConfig};
/// use em_data::synth::{build, BenchmarkId, Scale};
///
/// let ds = build(BenchmarkId::SemiHomo, Scale::Quick, 1);
/// let cfg = PromptEmConfig::default();
/// let backbone = pretrain_backbone(&ds, &cfg);
/// let enc = encode_with(&ds, &backbone, &cfg);
/// let proto = PromptEmModel::new(backbone, PromptOpts::default(), 7);
/// let (student, report) = lightweight_self_train(
///     &proto, &enc.train, &enc.valid, &enc.unlabeled,
///     Some(&enc.unlabeled_gold), &LstCfg::quick(),
/// );
/// println!("selected {:?} pseudo-labels", report.pseudo_selected);
/// # let _ = student;
/// ```
pub fn lightweight_self_train<M: TunableMatcher>(
    proto: &M,
    train: &[Example],
    valid: &[Example],
    unlabeled: &[EncodedPair],
    gold: Option<&[bool]>,
    cfg: &LstCfg,
) -> (M, LstReport) {
    lightweight_self_train_with(proto, train, valid, unlabeled, gold, cfg, None)
}

/// Running accumulators the LST loop checkpoints and restores.
struct LstState<M> {
    d_l: Vec<Example>,
    d_u: Vec<EncodedPair>,
    d_u_gold: Option<Vec<bool>>,
    report: LstReport,
    best: Option<(M, f64)>,
    /// Decisions of every selection so far (mirrors what checkpoints carry).
    history: Vec<Vec<crate::pseudo::PseudoLabel>>,
    /// Manifest accounting for trainings a resumed process would skip.
    skipped: Vec<SkippedTraining>,
    pruned_skipped: u64,
}

impl<M: TunableMatcher> LstState<M> {
    fn record_training(&mut self, r: &TrainReport) {
        self.skipped.push(SkippedTraining {
            epochs_run: r.epochs_run as u64,
            batches: r.batches_run as u64,
            best_valid_f1: r.best_valid_f1,
            final_train_loss: r.final_train_loss,
        });
        self.pruned_skipped += r.pruned as u64;
    }

    fn cursor(&self, iter: u64, stage: Stage) -> LstCursor {
        LstCursor {
            iter,
            stage,
            history: self.history.clone(),
            skipped: self.skipped.clone(),
            pruned_skipped: self.pruned_skipped,
            pseudo_selected: self
                .report
                .pseudo_selected
                .iter()
                .map(|&n| n as u64)
                .collect(),
            pseudo_quality: self.report.pseudo_quality.clone(),
            pruned: self.report.pruned as u64,
            teacher: self.report.teacher.clone(),
            student: self.report.student.clone(),
            best_f1: self.best.as_ref().map_or(f64::NAN, |(_, f1)| *f1),
        }
    }

    fn save(
        &self,
        res: &ResilienceCtx,
        iter: u64,
        stage: Stage,
        teacher: Option<&M>,
        best_state: Option<&MatcherState>,
    ) {
        let mut ckpt = Checkpoint::new();
        let mut meta = Vec::new();
        wire::put_str(&mut meta, "selftrain");
        ckpt.insert("meta", meta);
        ckpt.insert("cursor", self.cursor(iter, stage).encode());
        if let Some(t) = teacher {
            match t.export_state() {
                Some(state) => ckpt.insert("teacher", state.encode()),
                // Without the teacher a teacher-done checkpoint cannot be
                // resumed; skip saving rather than write a broken one.
                None => return,
            }
        }
        if let Some(b) = best_state {
            ckpt.insert("best", b.encode());
        }
        let tag = iter * 4 + stage.tag();
        if let Err(e) = res.save(tag, &ckpt) {
            em_obs::warn(format!("self-train checkpoint failed at stage {tag}: {e}"));
        }
    }
}

/// Rebuild the labeled/unlabeled pools by replaying recorded selection
/// decisions, re-emitting the `pseudo_select` events a fresh trace needs.
fn replay_history<M: TunableMatcher>(
    state: &mut LstState<M>,
    cursor: &LstCursor,
) -> Result<(), String> {
    let mut emits = Vec::with_capacity(cursor.history.len());
    for (r, round) in cursor.history.iter().enumerate() {
        if round.iter().any(|pl| pl.index >= state.d_u.len()) {
            return Err(format!(
                "round {r} decisions index beyond the unlabeled pool \
                 ({} entries)",
                state.d_u.len()
            ));
        }
        emits.push((
            round.len() as u64,
            cursor.pseudo_quality.get(r).map(|&(tpr, _)| tpr),
            cursor.pseudo_quality.get(r).map(|&(_, tnr)| tnr),
        ));
        let (pseudo_examples, consumed) = apply_pseudo_labels(&state.d_u, round);
        state.d_l.extend(pseudo_examples);
        remove_indices(&mut state.d_u, &consumed);
        if let Some(g) = &mut state.d_u_gold {
            remove_indices(g, &consumed);
        }
    }
    // Only a fully consistent replay emits events; a mismatch above makes
    // the caller fall back to a fresh start with a clean trace.
    for (count, tpr, tnr) in emits {
        em_obs::pseudo_select(count, tpr, tnr);
    }
    Ok(())
}

/// What [`decode_lst_checkpoint`] reconstructs: the stage cursor, the
/// carried teacher (when the stage needs one), and the best student so
/// far with its validation F1.
type DecodedLst<M> = (LstCursor, Option<M>, Option<(M, f64)>);

/// Parse a self-train checkpoint and reconstruct the carried models.
fn decode_lst_checkpoint<M: TunableMatcher>(
    ckpt: &Checkpoint,
    proto: &M,
    cfg: &LstCfg,
) -> Result<DecodedLst<M>, String> {
    match ckpt.get("meta").map(|m| wire::Reader::new(m).str()) {
        Some(Ok(kind)) if kind == "selftrain" => {}
        _ => return Err("not a self-train checkpoint".to_string()),
    }
    let cursor = LstCursor::decode(ckpt.require("cursor").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let teacher = match ckpt.get("teacher") {
        Some(bytes) => {
            let s = MatcherState::decode(bytes).map_err(|e| e.to_string())?;
            let mut t = proto.fresh(cfg.seed.wrapping_add(cursor.iter * 2));
            if !t.import_state(&s) {
                return Err("teacher state does not fit this model".to_string());
            }
            Some(t)
        }
        None => None,
    };
    if cursor.stage == Stage::TeacherDone && teacher.is_none() {
        return Err("teacher-done checkpoint lacks a teacher section".to_string());
    }
    let best = match ckpt.get("best") {
        Some(bytes) => {
            let s = MatcherState::decode(bytes).map_err(|e| e.to_string())?;
            let mut b = proto.fresh(cfg.seed);
            if !b.import_state(&s) {
                return Err("best-student state does not fit this model".to_string());
            }
            Some((b, cursor.best_f1))
        }
        None => None,
    };
    if cursor.stage == Stage::RoundDone && best.is_none() {
        return Err("round-done checkpoint lacks a best-student section".to_string());
    }
    Ok((cursor, teacher, best))
}

/// Re-emit the trace events that stand in for the work a resumed run
/// skips, so `promptem report --diff` against an uninterrupted run stays
/// clean (see DESIGN.md §9).
fn emit_restore_accounting(tag: u64, cursor: &LstCursor, prune_passes: u64) {
    let restored_epochs: u64 = cursor
        .skipped
        .iter()
        .map(|s| s.epochs_run.saturating_sub(1))
        .sum();
    em_obs::ckpt_restore(tag, 0, restored_epochs, 0);
    for s in &cursor.skipped {
        if s.epochs_run == 0 {
            continue;
        }
        // One summarizing epoch event per skipped training: carries the
        // training's full batch count and best validation F1 so the
        // manifest's epoch/step/F1 totals match an uninterrupted run.
        em_obs::epoch_summary(
            s.epochs_run - 1,
            s.final_train_loss as f64,
            s.best_valid_f1.is_finite().then_some(s.best_valid_f1),
            None,
            0,
            s.batches,
            0,
        );
    }
    if cursor.pruned_skipped > 0 {
        em_obs::prune(cursor.pruned_skipped, prune_passes);
    }
    if em_obs::enabled() {
        let skipped_steps: u64 = cursor.skipped.iter().map(|s| s.batches).sum();
        if skipped_steps > 0 {
            em_obs::metrics::counter("nn_optimizer_steps", &[("opt", "adamw")]).add(skipped_steps);
        }
    }
}

/// [`lightweight_self_train`] with crash safety: when `res` is given, the
/// loop checkpoints at stage boundaries (teacher trained → pseudo-labels
/// selected → round finished) and, with `res.resume`, continues a prior
/// interrupted run from the last completed stage. Pool contents are
/// reconstructed by replaying the recorded pseudo-label decisions, so the
/// resumed run is deterministic given the same inputs.
pub fn lightweight_self_train_with<M: TunableMatcher>(
    proto: &M,
    train: &[Example],
    valid: &[Example],
    unlabeled: &[EncodedPair],
    gold: Option<&[bool]>,
    cfg: &LstCfg,
    res: Option<&ResilienceCtx>,
) -> (M, LstReport) {
    let mut state: LstState<M> = LstState {
        d_l: train.to_vec(),
        d_u: unlabeled.to_vec(),
        d_u_gold: gold.map(|g| g.to_vec()),
        report: LstReport::default(),
        best: None,
        history: Vec::new(),
        skipped: Vec::new(),
        pruned_skipped: 0,
    };
    let mut start_iter = 0u64;
    let mut resume_stage: Option<Stage> = None;
    let mut teacher_restored: Option<M> = None;

    if let Some(res) = res.filter(|r| r.resume) {
        if let Some((tag, ckpt)) = res.load_latest() {
            match decode_lst_checkpoint(&ckpt, proto, cfg) {
                Ok((cursor, teacher, best)) => match replay_history(&mut state, &cursor) {
                    Ok(()) => {
                        emit_restore_accounting(
                            tag,
                            &cursor,
                            cfg.prune.as_ref().map_or(0, |p| p.passes as u64),
                        );
                        state.report.pseudo_selected =
                            cursor.pseudo_selected.iter().map(|&n| n as usize).collect();
                        state.report.pseudo_quality = cursor.pseudo_quality.clone();
                        state.report.pruned = cursor.pruned as usize;
                        state.report.teacher = cursor.teacher.clone();
                        state.report.student = cursor.student.clone();
                        state.skipped = cursor.skipped.clone();
                        state.pruned_skipped = cursor.pruned_skipped;
                        state.history = cursor.history.clone();
                        state.best = best;
                        start_iter = cursor.iter;
                        resume_stage = Some(cursor.stage);
                        teacher_restored = teacher;
                    }
                    Err(e) => {
                        em_obs::warn(format!(
                            "self-train checkpoint does not match this dataset, \
                             starting fresh: {e}"
                        ));
                        state.d_l = train.to_vec();
                        state.d_u = unlabeled.to_vec();
                        state.d_u_gold = gold.map(|g| g.to_vec());
                    }
                },
                Err(e) => {
                    em_obs::warn(format!(
                        "unusable self-train checkpoint, starting fresh: {e}"
                    ));
                }
            }
        }
    }

    let _lst_span = em_obs::span(em_obs::names::SPAN_LST);
    for iter in start_iter..cfg.iterations.max(1) as u64 {
        let _iter_span = em_obs::span_with(em_obs::names::SPAN_LST_ITER, format!("iter {iter}"));
        let stage_done = if iter == start_iter {
            resume_stage
        } else {
            None
        };
        let skip_select = matches!(stage_done, Some(Stage::SelectDone | Stage::RoundDone));
        let skip_student = matches!(stage_done, Some(Stage::RoundDone));

        // Lines 2-4: fresh teacher trained on D_L (or restored from the
        // last checkpoint; not needed at all past the selection stage).
        let mut teacher = teacher_restored.take();
        if teacher.is_none() && !skip_select {
            let mut t = proto.fresh(cfg.seed.wrapping_add(iter * 2));
            {
                let _span = em_obs::span(em_obs::names::SPAN_TEACHER);
                state.report.teacher = t.train(&state.d_l, valid, &cfg.teacher, None);
                em_nn::tape::flush_op_stats();
            }
            state.record_training(&state.report.teacher.clone());
            if let Some(res) = res {
                state.save(res, iter, Stage::TeacherDone, Some(&t), None);
            }
            teacher = Some(t);
        }

        if !skip_select {
            // Lines 5-8: uncertainty-aware pseudo-label selection.
            // lint:allow(unwrap) — teacher was trained or restored above
            let mut t = teacher.take().expect("teacher available before selection");
            let selected = {
                let _span = em_obs::span(em_obs::names::SPAN_PSEUDO_SELECT);
                let selected = select_pseudo_labels(&mut t, &state.d_u, &cfg.pseudo);
                em_nn::tape::flush_op_stats();
                selected
            };
            state.report.pseudo_selected.push(selected.len());
            let mut quality = None;
            if let Some(g) = &state.d_u_gold {
                let q = pseudo_label_quality(&selected, g);
                state.report.pseudo_quality.push(q);
                quality = Some(q);
            }
            em_obs::pseudo_select(
                selected.len() as u64,
                quality.map(|(tpr, _)| tpr),
                quality.map(|(_, tnr)| tnr),
            );
            let (pseudo_examples, consumed) = apply_pseudo_labels(&state.d_u, &selected);
            state.d_l.extend(pseudo_examples);
            remove_indices(&mut state.d_u, &consumed);
            if let Some(g) = &mut state.d_u_gold {
                remove_indices(g, &consumed);
            }
            state.history.push(selected);
            if let Some(res) = res {
                state.save(res, iter, Stage::SelectDone, None, None);
            }
        }

        if !skip_student {
            // Lines 9-15: fresh student trained on the augmented D_L with
            // dynamic data pruning.
            let mut student = proto.fresh(cfg.seed.wrapping_add(iter * 2 + 1));
            {
                let _span = em_obs::span(em_obs::names::SPAN_STUDENT);
                state.report.student =
                    student.train(&state.d_l, valid, &cfg.student, cfg.prune.as_ref());
                em_nn::tape::flush_op_stats();
            }
            state.report.pruned += state.report.student.pruned;
            state.record_training(&state.report.student.clone());

            // Line 16: keep the best student on the validation set.
            let f1 = crate::trainer::evaluate(&mut student, valid).f1;
            match &state.best {
                Some((_, best_f1)) if *best_f1 >= f1 => {}
                _ => state.best = Some((student, f1)),
            }
            if let Some(res) = res {
                let best_state = state.best.as_ref().and_then(|(m, _)| m.export_state());
                state.save(res, iter, Stage::RoundDone, None, best_state.as_ref());
            }
        }
    }
    // lint:allow(unwrap) — the loop body runs at least once
    let (model, _) = state.best.expect("at least one iteration");
    (model, state.report)
}

/// Remove elements at `indices` (any order) from `v`, preserving the order
/// of survivors.
fn remove_indices<T>(v: &mut Vec<T>, indices: &[usize]) {
    if indices.is_empty() {
        return;
    }
    let mut drop = vec![false; v.len()];
    for &i in indices {
        drop[i] = true;
    }
    let mut keep_iter = drop.into_iter();
    // lint:allow(unwrap) — the mask was built to v.len()
    v.retain(|_| !keep_iter.next().unwrap());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PromptEmModel, PromptOpts};
    use crate::testutil::{tiny_backbone, toy_examples};
    use crate::trainer::evaluate;

    #[test]
    fn remove_indices_preserves_order() {
        let mut v = vec![10, 11, 12, 13, 14];
        remove_indices(&mut v, &[3, 0]);
        assert_eq!(v, vec![11, 12, 14]);
        remove_indices(&mut v, &[]);
        assert_eq!(v, vec![11, 12, 14]);
    }

    #[test]
    fn lst_runs_and_moves_pseudo_labels() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 24, 10);
        // Build an unlabeled pool from more toy examples.
        let (extra, _) = toy_examples(&backbone, 40, 11);
        let unlabeled: Vec<_> = extra.iter().map(|e| e.pair.clone()).collect();
        let gold: Vec<bool> = extra.iter().map(|e| e.label).collect();

        let proto = PromptEmModel::new(backbone, PromptOpts::default(), 12);
        let cfg = LstCfg {
            teacher: TrainCfg {
                epochs: 3,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 3,
                ..Default::default()
            },
            pseudo: PseudoCfg {
                u_r: 0.2,
                passes: 3,
                ..Default::default()
            },
            prune: Some(PruneCfg {
                every: 2,
                e_r: 0.1,
                passes: 2,
            }),
            ..Default::default()
        };
        let (mut student, report) =
            lightweight_self_train(&proto, &train, &valid, &unlabeled, Some(&gold), &cfg);
        assert_eq!(report.pseudo_selected.len(), 1);
        assert_eq!(report.pseudo_selected[0], 6); // 20% of 30... u_r * |D_U|
        assert_eq!(report.pseudo_quality.len(), 1);
        let f1 = evaluate(&mut student, &valid).f1;
        assert!(f1.is_finite());
    }

    #[test]
    fn lst_selected_count_follows_u_r() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 16, 13);
        let (extra, _) = toy_examples(&backbone, 20, 14);
        let unlabeled: Vec<_> = extra.iter().map(|e| e.pair.clone()).collect();
        let proto = PromptEmModel::new(backbone, PromptOpts::default(), 15);
        let cfg = LstCfg {
            teacher: TrainCfg {
                epochs: 1,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 1,
                ..Default::default()
            },
            pseudo: PseudoCfg {
                u_r: 0.5,
                passes: 2,
                ..Default::default()
            },
            prune: None,
            ..Default::default()
        };
        let (_, report) = lightweight_self_train(&proto, &train, &valid, &unlabeled, None, &cfg);
        assert_eq!(
            report.pseudo_selected[0],
            (unlabeled.len() as f64 * 0.5).round() as usize
        );
        assert!(report.pseudo_quality.is_empty());
        assert_eq!(report.pruned, 0);
    }
}
