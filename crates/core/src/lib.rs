//! # promptem
//!
//! The paper's contribution, end to end:
//!
//! * [`encode`] — serialization + summarization + tokenization of GEM
//!   datasets into model-ready examples;
//! * [`model`] — [`model::PromptEmModel`], GEM cast as a cloze task through
//!   GEM-specific templates and label words (§3);
//! * [`finetune`] — the vanilla fine-tuning counterpart (§2.3), used by the
//!   "w/o PT" ablation and the BERT baseline;
//! * [`pseudo`] — uncertainty / confidence / clustering pseudo-label
//!   selection (§4.2, Table 5);
//! * [`pruning`] — MC-EL2N dynamic data pruning (§4.3);
//! * [`selftrain`] — Lightweight Self-Training, Algorithm 1;
//! * [`pipeline`] — the one-call pipeline used by examples and benches.
//!
//! ```no_run
//! use em_data::synth::{build, BenchmarkId, Scale};
//! use promptem::pipeline::{run, PromptEmConfig};
//!
//! let dataset = build(BenchmarkId::RelHeter, Scale::Quick, 42);
//! let result = run(&dataset, &PromptEmConfig::default());
//! println!("{} F1 = {:.1}", result.dataset, result.scores.f1);
//! ```

#![warn(missing_docs)]

pub mod active;
pub mod calibration;
pub mod encode;
pub mod explain;
pub mod finetune;
pub mod model;
pub mod pipeline;
pub mod pruning;
pub mod pseudo;
pub mod resume;
pub mod selftrain;
pub mod testutil;
pub mod trainer;

pub use active::{active_round, select_for_labeling, AcquisitionStrategy};
pub use calibration::{brier_score, expected_calibration_error};
pub use encode::{EncodeCfg, EncodedDataset, EncodedPair, Example, PairCodec};
pub use explain::{attribute_importance, AttributeImportance};
pub use finetune::FineTuneModel;
pub use model::{run_training, PromptEmModel, PromptOpts};
pub use pipeline::{
    run, run_trained, run_with_backbone, MatchDecision, PromptEmConfig, RunResult, TrainedMatcher,
    TrainedRun,
};
pub use pseudo::{PseudoCfg, SelectionStrategy};
pub use resume::MatcherState;
pub use selftrain::{lightweight_self_train, lightweight_self_train_with, LstCfg, LstReport};
pub use trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};
