//! Shared training configuration and the generic epoch loop contract used
//! by both prompt-tuning and fine-tuning models.

use crate::encode::{EncodedPair, Example};

/// Hyperparameters of one supervised training run (paper §5.1: AdamW,
/// batch size 32, lr 2e-5 at RoBERTa scale — rescaled for the mini-LM).
#[derive(Debug, Clone)]
pub struct TrainCfg {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Select the epoch with the best validation F1 (paper §5.1: "We select
    /// the epoch with the highest F1-score on the validation set").
    pub best_on_valid: bool,
    /// Oversample the minority (positive) class each epoch so batches are
    /// roughly balanced. EM candidate sets are negative-heavy; at the
    /// paper's scale large batches smooth this out, at mini scale explicit
    /// balancing is needed to keep tiny models off the majority-class
    /// collapse. Applied uniformly to every LM-based method.
    pub balance: bool,
    /// Shuffling/epoch RNG seed.
    pub seed: u64,
}

impl Default for TrainCfg {
    fn default() -> Self {
        TrainCfg {
            epochs: 10,
            batch_size: 16,
            lr: 1e-4,
            best_on_valid: true,
            balance: true,
            seed: 7,
        }
    }
}

/// Dynamic-data-pruning settings threaded into the student's training loop
/// (§4.3): every `every` epochs, drop the `e_r` fraction of training
/// examples with the lowest MC-EL2N scores.
#[derive(Debug, Clone)]
pub struct PruneCfg {
    /// Prune every this many epochs.
    pub every: usize,
    /// Fraction of the training set dropped per pruning event (Eq. 3).
    pub e_r: f64,
    /// MC-Dropout passes for MC-EL2N.
    pub passes: usize,
}

impl Default for PruneCfg {
    fn default() -> Self {
        PruneCfg {
            every: 3,
            e_r: 0.2,
            passes: 10,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs_run: usize,
    /// Optimizer steps taken across the run (skipped batches excluded).
    pub batches_run: usize,
    /// Best validation F1 observed (with calibrated threshold).
    pub best_valid_f1: f64,
    /// Mean loss of the final epoch.
    pub final_train_loss: f32,
    /// Examples pruned by dynamic data pruning across the run.
    pub pruned: usize,
}

/// The contract every trainable matcher in this crate satisfies; the
/// lightweight self-training loop (§4) is generic over it, which is what
/// makes LST "general enough to incorporate with other approaches" (§4.1).
pub trait TunableMatcher {
    /// A fresh re-initialized model sharing the same pretrained backbone
    /// (Algorithm 1 re-initializes the teacher and student each iteration).
    fn fresh(&self, seed: u64) -> Self
    where
        Self: Sized;

    /// Supervised training, optionally with dynamic data pruning.
    fn train(
        &mut self,
        train: &[Example],
        valid: &[Example],
        cfg: &TrainCfg,
        prune: Option<&PruneCfg>,
    ) -> TrainReport;

    /// Deterministic match probabilities in [0, 1] (dropout off).
    fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32>;

    /// `passes` stochastic forward passes with dropout on (MC-Dropout).
    fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>>;

    /// A pair embedding used by the clustering pseudo-label strategy.
    fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>>;

    /// The decision threshold on the match probability. Calibrated on the
    /// validation set at the end of training (mini-scale LMs are poorly
    /// calibrated; the validation set is in-budget — the paper likewise
    /// model-selects on it).
    fn threshold(&self) -> f32 {
        0.5
    }

    /// Install a calibrated decision threshold.
    fn set_threshold(&mut self, t: f32);

    /// Binary predictions at the model's threshold.
    fn predict(&mut self, pairs: &[EncodedPair]) -> Vec<bool> {
        let t = self.threshold();
        self.predict_proba(pairs).iter().map(|&p| p > t).collect()
    }

    /// Freeze the tuned state (weights, threshold, RNG position) for a
    /// crash-safe checkpoint. `None` (the default) means the matcher does
    /// not support checkpointing and the self-train loop skips its stage
    /// checkpoints.
    fn export_state(&self) -> Option<crate::resume::MatcherState> {
        None
    }

    /// Install state captured by [`TunableMatcher::export_state`] on a
    /// freshly built model. Returns `false` when unsupported or when the
    /// state does not fit this model (wrong shapes).
    fn import_state(&mut self, _state: &crate::resume::MatcherState) -> bool {
        false
    }
}

/// Pick the threshold maximizing F1 of `probs` against `gold`. Candidates
/// are midpoints between consecutive sorted probabilities (plus 0.5).
pub fn calibrate_threshold(probs: &[f32], gold: &[bool]) -> f32 {
    assert_eq!(probs.len(), gold.len());
    if probs.is_empty() {
        return 0.5;
    }
    let mut sorted: Vec<f32> = probs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut candidates = vec![0.5f32];
    for w in sorted.windows(2) {
        candidates.push((w[0] + w[1]) / 2.0);
    }
    candidates.push(sorted[0] - 1e-4);
    candidates.push(sorted[sorted.len() - 1] + 1e-4);
    let mut best = (0.5f32, -1.0f64);
    for &t in &candidates {
        let pred: Vec<bool> = probs.iter().map(|&p| p > t).collect();
        let f1 = em_data::Confusion::from_pairs(&pred, gold).f1();
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    best.0
}

/// Evaluate a matcher on labeled examples.
pub fn evaluate<M: TunableMatcher>(model: &mut M, examples: &[Example]) -> em_data::PrfScores {
    let pairs: Vec<EncodedPair> = examples.iter().map(|e| e.pair.clone()).collect();
    let pred = model.predict(&pairs);
    let gold: Vec<bool> = examples.iter().map(|e| e.label).collect();
    em_data::PrfScores::from_predictions(&pred, &gold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let t = TrainCfg::default();
        assert!(t.epochs > 0 && t.batch_size > 0 && t.lr > 0.0);
        let p = PruneCfg::default();
        assert!(p.every > 0 && p.e_r > 0.0 && p.e_r < 1.0 && p.passes > 0);
    }
}
