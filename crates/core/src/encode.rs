//! Turning a [`GemDataset`] into token-level examples: serialization
//! (§2.2), TF-IDF summarization of long entries (Appendix F), and
//! tokenization. Every downstream model consumes [`EncodedPair`]s.

use em_data::pair::GemDataset;
use em_data::record::Format;
use em_data::serialize::serialize;
use em_data::summarize::TfIdf;
use em_lm::Tokenizer;

/// A tokenized candidate pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedPair {
    /// Token ids of the left record's summary.
    pub ids_a: Vec<usize>,
    /// Token ids of the right record's summary.
    pub ids_b: Vec<usize>,
}

/// A labeled tokenized pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// The tokenized candidate pair.
    pub pair: EncodedPair,
    /// Gold (or pseudo) label.
    pub label: bool,
}

/// A fully-encoded dataset. The unlabeled pool keeps its gold labels in a
/// *separate* vector so pseudo-label quality can be audited (Table 5)
/// without models ever seeing them.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// The source dataset's name.
    pub name: String,
    /// Low-resource labeled training split.
    pub train: Vec<Example>,
    /// Validation split.
    pub valid: Vec<Example>,
    /// Held-out test split.
    pub test: Vec<Example>,
    /// Unlabeled pool for self-training.
    pub unlabeled: Vec<EncodedPair>,
    /// Gold labels of `unlabeled`, index-aligned; for evaluation only.
    pub unlabeled_gold: Vec<bool>,
}

impl EncodedDataset {
    /// Gold labels of the test split.
    pub fn test_labels(&self) -> Vec<bool> {
        self.test.iter().map(|e| e.label).collect()
    }
}

/// Encoding parameters.
#[derive(Debug, Clone)]
pub struct EncodeCfg {
    /// Token budget per record after summarization.
    pub side_tokens: usize,
    /// Apply TF-IDF summarization to any table whose serializations exceed
    /// the budget (Appendix F, applied uniformly). When false, long entries
    /// are head-truncated instead — the strategy the appendix argues
    /// against; kept for the ablation.
    pub summarize_text: bool,
}

impl Default for EncodeCfg {
    fn default() -> Self {
        EncodeCfg {
            side_tokens: 16,
            summarize_text: true,
        }
    }
}

/// Serialize and (for long textual tables) summarize every record of one
/// table, returning per-record strings.
fn table_texts(
    records: &[em_data::record::Record],
    format: Format,
    cfg: &EncodeCfg,
) -> Vec<String> {
    let raw: Vec<String> = records.iter().map(|r| serialize(r, format)).collect();
    let _ = format;
    let needs_summary = cfg.summarize_text
        && raw
            .iter()
            .any(|s| s.split_whitespace().count() > cfg.side_tokens);
    if needs_summary {
        let tfidf = TfIdf::fit(raw.iter().map(|s| s.as_str()));
        raw.iter()
            .map(|s| tfidf.summarize(s, cfg.side_tokens))
            .collect()
    } else {
        raw
    }
}

/// Per-record token ids for both tables: encodes any `(left, right)`
/// record pair exactly as [`encode_dataset`] would (which goes through
/// this type, so the equivalence holds by construction). The serve path
/// uses it to encode ad-hoc request pairs bit-identically to the offline
/// dataset encoding.
#[derive(Clone)]
pub struct PairCodec {
    left_ids: Vec<Vec<usize>>,
    right_ids: Vec<Vec<usize>>,
}

impl PairCodec {
    /// Serialize, summarize, and tokenize every record of both tables.
    pub fn build(ds: &GemDataset, tokenizer: &Tokenizer, cfg: &EncodeCfg) -> Self {
        let clip = |ids: Vec<usize>| -> Vec<usize> {
            let mut ids = ids;
            ids.truncate(cfg.side_tokens);
            ids
        };
        PairCodec {
            left_ids: table_texts(&ds.left.records, ds.left.format, cfg)
                .iter()
                .map(|t| clip(tokenizer.encode(t)))
                .collect(),
            right_ids: table_texts(&ds.right.records, ds.right.format, cfg)
                .iter()
                .map(|t| clip(tokenizer.encode(t)))
                .collect(),
        }
    }

    /// Records per table, `(left, right)`.
    pub fn sizes(&self) -> (usize, usize) {
        (self.left_ids.len(), self.right_ids.len())
    }

    /// Encode one record pair; `None` when either index is out of range.
    pub fn encode(&self, left: usize, right: usize) -> Option<EncodedPair> {
        Some(EncodedPair {
            ids_a: self.left_ids.get(left)?.clone(),
            ids_b: self.right_ids.get(right)?.clone(),
        })
    }
}

/// Encode the full dataset. Serialization/summarization/tokenization run
/// once per record, not once per pair.
pub fn encode_dataset(ds: &GemDataset, tokenizer: &Tokenizer, cfg: &EncodeCfg) -> EncodedDataset {
    let codec = PairCodec::build(ds, tokenizer, cfg);
    let enc_pair = |p: em_data::pair::Pair| {
        // lint:allow(unwrap) — GemDataset construction range-checks every
        // pair against its tables; an out-of-range index here is a bug in
        // the dataset builder, not a recoverable input error.
        codec
            .encode(p.left, p.right)
            .expect("dataset pair indexes a missing record")
    };
    let enc_labeled = |ps: &[em_data::pair::LabeledPair]| -> Vec<Example> {
        ps.iter()
            .map(|lp| Example {
                pair: enc_pair(lp.pair),
                label: lp.label,
            })
            .collect()
    };
    EncodedDataset {
        name: ds.name.clone(),
        train: enc_labeled(&ds.train),
        valid: enc_labeled(&ds.valid),
        test: enc_labeled(&ds.test),
        unlabeled: ds.unlabeled.iter().map(|lp| enc_pair(lp.pair)).collect(),
        unlabeled_gold: ds.unlabeled.iter().map(|lp| lp.label).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::synth::{build, BenchmarkId, Scale};

    fn encoded(id: BenchmarkId) -> EncodedDataset {
        let ds = build(id, Scale::Quick, 17);
        let corpus: Vec<String> = ds
            .left
            .records
            .iter()
            .map(|r| serialize(r, ds.left.format))
            .chain(
                ds.right
                    .records
                    .iter()
                    .map(|r| serialize(r, ds.right.format)),
            )
            .collect();
        let tok = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 1);
        encode_dataset(&ds, &tok, &EncodeCfg::default())
    }

    #[test]
    fn splits_carry_over() {
        let ds = build(BenchmarkId::RelHeter, Scale::Quick, 17);
        let e = encoded(BenchmarkId::RelHeter);
        assert_eq!(e.train.len(), ds.train.len());
        assert_eq!(e.valid.len(), ds.valid.len());
        assert_eq!(e.test.len(), ds.test.len());
        assert_eq!(e.unlabeled.len(), e.unlabeled_gold.len());
    }

    #[test]
    fn sides_respect_token_budget() {
        let e = encoded(BenchmarkId::SemiTextW);
        for ex in e.train.iter().chain(&e.valid).chain(&e.test) {
            assert!(ex.pair.ids_a.len() <= 16);
            assert!(ex.pair.ids_b.len() <= 16);
        }
    }

    #[test]
    fn no_empty_sides() {
        for id in [
            BenchmarkId::RelHeter,
            BenchmarkId::RelText,
            BenchmarkId::SemiHeter,
        ] {
            let e = encoded(id);
            for ex in e.train.iter().chain(&e.test) {
                assert!(!ex.pair.ids_a.is_empty(), "{id:?}: empty left side");
                assert!(!ex.pair.ids_b.is_empty(), "{id:?}: empty right side");
            }
        }
    }

    #[test]
    fn summarization_only_affects_textual_tables() {
        let ds = build(BenchmarkId::SemiTextC, Scale::Quick, 18);
        let corpus: Vec<String> = ds
            .right
            .records
            .iter()
            .map(|r| serialize(r, ds.right.format))
            .collect();
        let tok = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 1);
        let with = encode_dataset(
            &ds,
            &tok,
            &EncodeCfg {
                summarize_text: true,
                side_tokens: 20,
            },
        );
        let without = encode_dataset(
            &ds,
            &tok,
            &EncodeCfg {
                summarize_text: false,
                side_tokens: 20,
            },
        );
        // Both respect the budget, but summaries pick different tokens than
        // head truncation for at least some records.
        let differs = with
            .test
            .iter()
            .zip(&without.test)
            .any(|(a, b)| a.pair.ids_b != b.pair.ids_b);
        assert!(differs, "summarization had no effect on the textual side");
    }
}
