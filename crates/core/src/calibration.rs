//! Calibration diagnostics. §4.2 motivates uncertainty-aware selection with
//! "incorrect predictions can have high confidence scores in poorly
//! calibrated networks" — this module measures exactly that claim.

/// Expected Calibration Error over equal-width confidence bins: the
/// weighted mean |accuracy − confidence| per bin (Guo et al.'s standard
/// definition, binary case).
pub fn expected_calibration_error(probs: &[f32], gold: &[bool], bins: usize) -> f64 {
    assert_eq!(probs.len(), gold.len());
    assert!(bins > 0);
    if probs.is_empty() {
        return 0.0;
    }
    // Per-sample confidence is max(p, 1-p); correctness is against the
    // implied prediction p > 0.5.
    let mut bin_conf = vec![0.0f64; bins];
    let mut bin_correct = vec![0.0f64; bins];
    let mut bin_count = vec![0usize; bins];
    for (&p, &g) in probs.iter().zip(gold) {
        let pred = p > 0.5;
        let conf = f64::from(p.max(1.0 - p));
        // conf is in [0.5, 1.0]; spread it over the bins.
        let idx = (((conf - 0.5) * 2.0) * bins as f64)
            .min(bins as f64 - 1.0)
            .max(0.0) as usize;
        bin_conf[idx] += conf;
        bin_correct[idx] += f64::from(u8::from(pred == g));
        bin_count[idx] += 1;
    }
    let n = probs.len() as f64;
    let mut ece = 0.0;
    for b in 0..bins {
        if bin_count[b] == 0 {
            continue;
        }
        let count = bin_count[b] as f64;
        let acc = bin_correct[b] / count;
        let conf = bin_conf[b] / count;
        ece += (count / n) * (acc - conf).abs();
    }
    ece
}

/// Brier score (mean squared error of the probability against the 0/1
/// outcome): lower is better-calibrated *and* sharper.
pub fn brier_score(probs: &[f32], gold: &[bool]) -> f64 {
    assert_eq!(probs.len(), gold.len());
    if probs.is_empty() {
        return 0.0;
    }
    probs
        .iter()
        .zip(gold)
        .map(|(&p, &g)| {
            let y = f64::from(u8::from(g));
            (f64::from(p) - y).powi(2)
        })
        .sum::<f64>()
        / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_and_correct_has_zero_ece() {
        let probs = vec![0.99f32, 0.99, 0.01, 0.01];
        let gold = vec![true, true, false, false];
        let ece = expected_calibration_error(&probs, &gold, 10);
        assert!(ece < 0.02, "ece {ece}");
        assert!(brier_score(&probs, &gold) < 0.001);
    }

    #[test]
    fn confidently_wrong_predictions_have_high_ece() {
        // The §4.2 failure mode: high confidence, wrong answers.
        let probs = vec![0.95f32; 10];
        let gold = vec![false; 10];
        let ece = expected_calibration_error(&probs, &gold, 10);
        assert!(
            ece > 0.9,
            "confidently-wrong should give ECE near 0.95: {ece}"
        );
        assert!(brier_score(&probs, &gold) > 0.85);
    }

    #[test]
    fn chance_predictions_at_half_confidence_are_calibrated() {
        // p = 0.5 ± ε on a balanced set: confidence ~0.5, accuracy ~0.5.
        let probs: Vec<f32> = (0..100)
            .map(|i| if i % 2 == 0 { 0.51 } else { 0.49 })
            .collect();
        let gold: Vec<bool> = (0..100).map(|i| (i / 2) % 2 == 0).collect();
        let ece = expected_calibration_error(&probs, &gold, 10);
        assert!(ece < 0.1, "ece {ece}");
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(expected_calibration_error(&[], &[], 5), 0.0);
        assert_eq!(brier_score(&[], &[]), 0.0);
    }

    #[test]
    fn ece_is_bounded() {
        let probs = vec![0.7f32, 0.2, 0.9, 0.55];
        let gold = vec![false, true, true, false];
        let ece = expected_calibration_error(&probs, &gold, 4);
        assert!((0.0..=1.0).contains(&ece));
    }
}
