//! Shared test fixtures: a tiny pretrained backbone and a linearly
//! separable toy matching task. Compiled only for tests within this crate
//! and exported for integration tests behind the `testutil` feature-less
//! path (it is tiny and has no extra dependencies).

use crate::encode::{EncodedPair, Example};
use em_lm::{LmConfig, PretrainCfg, PretrainedLm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A corpus that covers the prompt glue words and label words plus a small
/// content vocabulary of paired "entities".
pub fn toy_corpus() -> Vec<String> {
    let mut corpus = Vec::new();
    let names = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    for (i, a) in names.iter().enumerate() {
        for (j, b) in names.iter().enumerate() {
            if (i + j) % 3 == 0 {
                corpus.push(format!("[COL] name [VAL] {a} shop {b}"));
            }
        }
    }
    // Dense distant-supervision statements over name pairs: identical names
    // phrased with positive relation words, distinct names with negative
    // ones — the toy equivalent of the corpus builder's heuristics.
    let pos = ["matched", "similar", "relevant"];
    let neg = ["mismatched", "different", "irrelevant"];
    for (i, a) in names.iter().enumerate() {
        for (j, b) in names.iter().enumerate() {
            let w = if i == j {
                pos[(i + j) % 3]
            } else {
                neg[(i + j) % 3]
            };
            if i == j || (i + 2 * j) % 4 == 0 {
                corpus.push(format!("{a} shop {b} shop they are {w}"));
                corpus.push(format!("{a} shop is {w} to {b} shop"));
            }
        }
    }
    corpus
}

/// A pretrained tiny backbone shared by tests. Built once per process: the
/// configuration is the smallest one at which the MLM reliably learns the
/// cloze-style pair discrimination prompt-tuning relies on.
pub fn tiny_backbone() -> Arc<PretrainedLm> {
    static BACKBONE: std::sync::OnceLock<Arc<PretrainedLm>> = std::sync::OnceLock::new();
    BACKBONE
        .get_or_init(|| {
            let corpus = toy_corpus();
            Arc::new(PretrainedLm::pretrain(
                &corpus,
                |v| LmConfig {
                    vocab: v,
                    d_model: 32,
                    n_layers: 2,
                    n_heads: 4,
                    d_ff: 64,
                    max_len: 24,
                    dropout: 0.1,
                },
                &PretrainCfg {
                    max_steps: 1500,
                    ..Default::default()
                },
                0xBACB0E,
            ))
        })
        .clone()
}

/// A toy matching task: a pair matches iff both sides mention the same
/// entity name. Returns (train, valid).
pub fn toy_examples(lm: &PretrainedLm, n: usize, seed: u64) -> (Vec<Example>, Vec<Example>) {
    let names = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all = Vec::with_capacity(n);
    for k in 0..n {
        let i = rng.gen_range(0..names.len());
        let matched = k % 2 == 0;
        let j = if matched {
            i
        } else {
            (i + 1 + rng.gen_range(0..names.len() - 1)) % names.len()
        };
        let a = lm
            .tokenizer
            .encode(&format!("[COL] name [VAL] {} shop", names[i]));
        let b = lm.tokenizer.encode(&format!("{} shop", names[j]));
        all.push(Example {
            pair: EncodedPair { ids_a: a, ids_b: b },
            label: i == j,
        });
    }
    let split = (n * 3) / 4;
    let valid = all.split_off(split);
    (all, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_task_is_balanced_and_consistent() {
        let lm = tiny_backbone();
        let (train, valid) = toy_examples(&lm, 40, 9);
        assert_eq!(train.len() + valid.len(), 40);
        let pos = train.iter().filter(|e| e.label).count();
        assert!(
            pos > 5 && pos < train.len() - 5,
            "degenerate balance: {pos}"
        );
    }

    #[test]
    fn backbone_vocabulary_covers_label_words() {
        let lm = tiny_backbone();
        for w in [
            "matched",
            "similar",
            "relevant",
            "mismatched",
            "different",
            "irrelevant",
        ] {
            assert!(lm.tokenizer.id_of(w).is_some(), "{w} missing");
        }
    }
}
