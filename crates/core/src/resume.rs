//! Crash-safe state capture for the self-training loop.
//!
//! The LST loop checkpoints at stage boundaries (teacher trained,
//! pseudo-labels selected, round finished). A checkpoint stores the
//! *decisions* of completed stages — which pool indices were pseudo-labeled
//! with which label — rather than the pools themselves, so a resumed
//! process replays them over its own freshly encoded dataset and arrives
//! at bit-identical `D_L`/`D_U` contents. Matcher weights travel as
//! [`MatcherState`] blobs produced by the models' own serializers.

use crate::pseudo::PseudoLabel;
use crate::trainer::TrainReport;
use em_resilience::wire;
use std::io;

/// A tuned matcher frozen for checkpointing: serialized parameters, the
/// calibrated decision threshold, and the RNG stream position (so
/// MC-Dropout replays identically after a resume).
#[derive(Debug, Clone, PartialEq)]
pub struct MatcherState {
    /// `em_nn::io::write_params` output for the model's parameter store.
    pub params: Vec<u8>,
    /// Calibrated decision threshold.
    pub threshold: f32,
    /// xoshiro256++ state of the model's RNG.
    pub rng: [u64; 4],
}

impl MatcherState {
    /// Serialize for a checkpoint section.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_bytes(&mut out, &self.params);
        wire::put_f32(&mut out, self.threshold);
        for w in self.rng {
            wire::put_u64(&mut out, w);
        }
        out
    }

    /// Parse a checkpoint section.
    pub fn decode(payload: &[u8]) -> io::Result<MatcherState> {
        let mut r = wire::Reader::new(payload);
        let params = r.bytes()?.to_vec();
        let threshold = r.f32()?;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = r.u64()?;
        }
        r.finish()?;
        Ok(MatcherState {
            params,
            threshold,
            rng,
        })
    }
}

/// How far a checkpointed LST round had progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Teacher trained; selection not yet run.
    TeacherDone,
    /// Pseudo-labels selected and applied; student not yet trained.
    SelectDone,
    /// Student trained and the best-so-far updated.
    RoundDone,
}

impl Stage {
    /// Stable wire tag (also the checkpoint-tag offset within a round).
    pub fn tag(self) -> u64 {
        match self {
            Stage::TeacherDone => 1,
            Stage::SelectDone => 2,
            Stage::RoundDone => 3,
        }
    }

    fn from_tag(t: u64) -> io::Result<Stage> {
        match t {
            1 => Ok(Stage::TeacherDone),
            2 => Ok(Stage::SelectDone),
            3 => Ok(Stage::RoundDone),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad LST stage tag {other}"),
            )),
        }
    }
}

/// One training run a resumed process skips; enough to re-emit a
/// summarizing `epoch_summary` event so run manifests stay comparable
/// with an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedTraining {
    /// Epochs the skipped training ran.
    pub epochs_run: u64,
    /// Optimizer steps (batches) it took.
    pub batches: u64,
    /// Best validation F1 it reported (percent), NaN when it had none.
    pub best_valid_f1: f64,
    /// Mean loss of its final epoch.
    pub final_train_loss: f32,
}

/// The loop position + accounting part of an LST checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct LstCursor {
    /// Round the checkpoint belongs to.
    pub iter: u64,
    /// Progress within that round.
    pub stage: Stage,
    /// Pseudo-label decisions of every recorded selection, oldest first
    /// (rounds `0..iter`, plus round `iter` itself once past
    /// [`Stage::TeacherDone`]).
    pub history: Vec<Vec<PseudoLabel>>,
    /// Trainings the resumed process will skip, in emission order.
    pub skipped: Vec<SkippedTraining>,
    /// Examples dropped by pruning inside skipped trainings.
    pub pruned_skipped: u64,
    /// `LstReport::pseudo_selected` so far.
    pub pseudo_selected: Vec<u64>,
    /// `LstReport::pseudo_quality` so far.
    pub pseudo_quality: Vec<(f64, f64)>,
    /// `LstReport::pruned` so far.
    pub pruned: u64,
    /// Last teacher training report.
    pub teacher: TrainReport,
    /// Last student training report.
    pub student: TrainReport,
    /// Validation F1 of the best student so far (meaningful only when the
    /// checkpoint carries a `best` section).
    pub best_f1: f64,
}

fn put_report(out: &mut Vec<u8>, r: &TrainReport) {
    wire::put_u64(out, r.epochs_run as u64);
    wire::put_u64(out, r.batches_run as u64);
    wire::put_f64(out, r.best_valid_f1);
    wire::put_f32(out, r.final_train_loss);
    wire::put_u64(out, r.pruned as u64);
}

fn read_report(r: &mut wire::Reader<'_>) -> io::Result<TrainReport> {
    Ok(TrainReport {
        epochs_run: r.u64()? as usize,
        batches_run: r.u64()? as usize,
        best_valid_f1: r.f64()?,
        final_train_loss: r.f32()?,
        pruned: r.u64()? as usize,
    })
}

impl LstCursor {
    /// Serialize for a checkpoint section.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u64(&mut out, self.iter);
        wire::put_u64(&mut out, self.stage.tag());
        wire::put_u64(&mut out, self.history.len() as u64);
        for round in &self.history {
            wire::put_u64(&mut out, round.len() as u64);
            for pl in round {
                wire::put_u64(&mut out, pl.index as u64);
                wire::put_u64(&mut out, pl.label as u64);
            }
        }
        wire::put_u64(&mut out, self.skipped.len() as u64);
        for s in &self.skipped {
            wire::put_u64(&mut out, s.epochs_run);
            wire::put_u64(&mut out, s.batches);
            wire::put_f64(&mut out, s.best_valid_f1);
            wire::put_f32(&mut out, s.final_train_loss);
        }
        wire::put_u64(&mut out, self.pruned_skipped);
        wire::put_u64(&mut out, self.pseudo_selected.len() as u64);
        for &n in &self.pseudo_selected {
            wire::put_u64(&mut out, n);
        }
        wire::put_u64(&mut out, self.pseudo_quality.len() as u64);
        for &(tpr, tnr) in &self.pseudo_quality {
            wire::put_f64(&mut out, tpr);
            wire::put_f64(&mut out, tnr);
        }
        wire::put_u64(&mut out, self.pruned);
        put_report(&mut out, &self.teacher);
        put_report(&mut out, &self.student);
        wire::put_f64(&mut out, self.best_f1);
        out
    }

    /// Parse a checkpoint section.
    pub fn decode(payload: &[u8]) -> io::Result<LstCursor> {
        let mut r = wire::Reader::new(payload);
        let iter = r.u64()?;
        let stage = Stage::from_tag(r.u64()?)?;
        let n_rounds = r.u64()? as usize;
        let mut history = Vec::with_capacity(n_rounds.min(1024));
        for _ in 0..n_rounds {
            let n = r.u64()? as usize;
            if n * 16 > r.remaining() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "pseudo-label history overruns the payload",
                ));
            }
            let mut round = Vec::with_capacity(n);
            for _ in 0..n {
                let index = r.u64()? as usize;
                let label = r.u64()? != 0;
                round.push(PseudoLabel { index, label });
            }
            history.push(round);
        }
        let n_skipped = r.u64()? as usize;
        if n_skipped * 28 > r.remaining() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "skipped-training list overruns the payload",
            ));
        }
        let mut skipped = Vec::with_capacity(n_skipped);
        for _ in 0..n_skipped {
            skipped.push(SkippedTraining {
                epochs_run: r.u64()?,
                batches: r.u64()?,
                best_valid_f1: r.f64()?,
                final_train_loss: r.f32()?,
            });
        }
        let pruned_skipped = r.u64()?;
        let n_sel = r.u64()? as usize;
        let mut pseudo_selected = Vec::with_capacity(n_sel.min(1024));
        for _ in 0..n_sel {
            pseudo_selected.push(r.u64()?);
        }
        let n_q = r.u64()? as usize;
        let mut pseudo_quality = Vec::with_capacity(n_q.min(1024));
        for _ in 0..n_q {
            pseudo_quality.push((r.f64()?, r.f64()?));
        }
        let pruned = r.u64()?;
        let teacher = read_report(&mut r)?;
        let student = read_report(&mut r)?;
        let best_f1 = r.f64()?;
        r.finish()?;
        Ok(LstCursor {
            iter,
            stage,
            history,
            skipped,
            pruned_skipped,
            pseudo_selected,
            pseudo_quality,
            pruned,
            teacher,
            student,
            best_f1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cursor() -> LstCursor {
        LstCursor {
            iter: 1,
            stage: Stage::SelectDone,
            history: vec![
                vec![
                    PseudoLabel {
                        index: 3,
                        label: true,
                    },
                    PseudoLabel {
                        index: 7,
                        label: false,
                    },
                ],
                vec![PseudoLabel {
                    index: 0,
                    label: true,
                }],
            ],
            skipped: vec![SkippedTraining {
                epochs_run: 10,
                batches: 40,
                best_valid_f1: 82.5,
                final_train_loss: 0.31,
            }],
            pruned_skipped: 5,
            pseudo_selected: vec![2, 1],
            pseudo_quality: vec![(1.0, 0.9)],
            pruned: 5,
            teacher: TrainReport {
                epochs_run: 10,
                batches_run: 40,
                best_valid_f1: 82.5,
                final_train_loss: 0.31,
                pruned: 0,
            },
            student: TrainReport::default(),
            best_f1: 82.5,
        }
    }

    #[test]
    fn cursor_round_trips() {
        let c = sample_cursor();
        let bytes = c.encode();
        let back = LstCursor::decode(&bytes).expect("decode");
        assert_eq!(back, c);
    }

    #[test]
    fn matcher_state_round_trips() {
        let s = MatcherState {
            params: vec![1, 2, 3, 4, 5],
            threshold: 0.42,
            rng: [9, 8, 7, 6],
        };
        let back = MatcherState::decode(&s.encode()).expect("decode");
        assert_eq!(back, s);
    }

    #[test]
    fn truncated_cursor_is_rejected() {
        let bytes = sample_cursor().encode();
        for cut in [0, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                LstCursor::decode(&bytes[..cut]).is_err(),
                "cut at {cut} parsed"
            );
        }
    }

    #[test]
    fn bad_stage_tag_is_rejected() {
        let mut c = sample_cursor();
        c.history.clear();
        let mut bytes = c.encode();
        bytes[8] = 9; // stage tag field
        assert!(LstCursor::decode(&bytes).is_err());
    }
}
