//! The PromptEM model: GEM cast as a cloze-style task (paper §3). A clone
//! of the pretrained backbone is tuned end-to-end together with the
//! continuous prompt embeddings; classification happens by scoring the
//! label words at the `[MASK]` position through the *pretrained* MLM head
//! (Eq. 1) — no freshly-initialized task head anywhere.

use crate::encode::{EncodedPair, Example};
use crate::trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};
use em_lm::prompt::{LabelWords, PromptMode, PromptTemplate, TemplateId, Verbalizer};
use em_lm::PretrainedLm;
use em_nn::{AdamW, Matrix, NoGradTape, ParamStore, Tape, TapeExec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;

/// Scoring batch size: small enough to keep per-tape memory bounded, large
/// enough to amortize the MLM head matmul. Also the sharding granularity of
/// the parallel scorer, so it is part of the determinism contract: chunk
/// boundaries decide where worker RNG streams are split.
const SCORE_CHUNK: usize = 32;

/// Match probabilities for a batch of pairs on any executor — the recording
/// [`Tape`] or the tape-free [`NoGradTape`]. Free-standing (not a method)
/// so scoring workers can run it against `&self` field borrows concurrently,
/// each with its own tape and RNG stream. Only the `[MASK]` hidden state
/// feeds the MLM head, so the forward takes the single-row last-layer path
/// (`forward_mask_row`) — bit-exact with slicing the full forward,
/// including its RNG draw count.
fn forward_probs_on(
    tape: &mut impl TapeExec,
    lm: &PretrainedLm,
    template: &PromptTemplate,
    verbalizer: &Verbalizer,
    cached_rows: Option<&Matrix>,
    pairs: &[&EncodedPair],
    rng: &mut impl Rng,
) -> Vec<f32> {
    let mut rows = Vec::with_capacity(pairs.len());
    for p in pairs {
        rows.push(template.forward_mask_row(
            tape,
            &lm.store,
            &lm.encoder,
            &p.ids_a,
            &p.ids_b,
            cached_rows,
            rng,
        ));
    }
    let stacked = tape.concat_rows(&rows);
    let logits = lm.mlm.logits(tape, &lm.store, &lm.encoder, stacked);
    let probs = verbalizer.class_probs(tape, logits);
    let pm = tape.value(probs);
    (0..pm.rows())
        .map(|r| {
            let yes = pm.get(r, 0);
            let no = pm.get(r, 1);
            yes / (yes + no).max(1e-12)
        })
        .collect()
}

/// Prompt-side options (template/mode/label words — the knobs of §5.5).
#[derive(Debug, Clone)]
pub struct PromptOpts {
    /// Which GEM template to use.
    pub template: TemplateId,
    /// Hard or continuous prompts.
    pub mode: PromptMode,
    /// The verbalizer's label words.
    pub label_words: LabelWords,
}

impl Default for PromptOpts {
    fn default() -> Self {
        // §5.5/Appendix B: continuous T2 performs best overall.
        PromptOpts {
            template: TemplateId::T2,
            mode: PromptMode::Continuous,
            label_words: LabelWords::designed(),
        }
    }
}

/// A prompt-tuned GEM matcher. Cloning snapshots the whole model (working
/// weights, prompt machinery, threshold, RNG) — the serve supervisor uses
/// this to hand each replacement worker an identical-deciding copy.
#[derive(Clone)]
pub struct PromptEmModel {
    backbone: Arc<PretrainedLm>,
    /// The working copy of the backbone (prompt-tuned in place).
    pub lm: PretrainedLm,
    /// The instantiated prompt template.
    pub template: PromptTemplate,
    /// The resolved label words.
    pub verbalizer: Verbalizer,
    opts: PromptOpts,
    threshold: f32,
    rng: StdRng,
    /// One-shot graph audit on the first training step (every step when
    /// the sanitizer is on): catches detached prompt/head parameters
    /// before a whole run trains on a broken graph.
    audit_pending: bool,
}

impl PromptEmModel {
    /// Clone the backbone and instantiate the prompt machinery on it.
    pub fn new(backbone: Arc<PretrainedLm>, opts: PromptOpts, seed: u64) -> Self {
        let mut lm = (*backbone).clone();
        let mut rng = StdRng::seed_from_u64(seed);
        // Warm-start continuous prompts from the hard template's word
        // embeddings so tuning begins at the pretrained cloze behavior.
        let init_rows = match opts.mode {
            PromptMode::Continuous => {
                let ids = PromptTemplate::init_word_ids(&lm.tokenizer, opts.template);
                Some(lm.store.value(lm.encoder.tok_emb.table).gather_rows(&ids))
            }
            PromptMode::Hard => None,
        };
        let template = PromptTemplate::with_init(
            &mut lm.store,
            &lm.tokenizer,
            lm.encoder.cfg.d_model,
            opts.template,
            opts.mode,
            init_rows.as_ref(),
            &mut rng,
        );
        let verbalizer = Verbalizer::new(&lm.tokenizer, &opts.label_words);
        PromptEmModel {
            backbone,
            lm,
            template,
            verbalizer,
            opts,
            threshold: 0.5,
            rng,
            audit_pending: true,
        }
    }

    /// Class targets: 0 = match ("yes" words), 1 = mismatch ("no" words).
    fn target(label: bool) -> usize {
        if label {
            0
        } else {
            1
        }
    }

    /// RNG values one train-mode scoring pass over `chunk` consumes — the
    /// analytic mirror of what [`forward_probs_on`] draws (dropout masks
    /// only; the prompt stack and MLM head are RNG-free). Lets the parallel
    /// scorer fast-forward worker streams instead of replaying forwards.
    fn chunk_draws(&self, chunk: &[EncodedPair]) -> u64 {
        chunk
            .iter()
            .map(|p| {
                let seq = self.template.seq_len(
                    self.lm.encoder.cfg.max_len,
                    p.ids_a.len(),
                    p.ids_b.len(),
                );
                self.lm.encoder.dropout_draws(seq as u64)
            })
            .sum()
    }

    fn batch_step(&mut self, batch: &[&Example], opt: &mut AdamW) -> f32 {
        self.lm.store.zero_grads();
        let mut tape = Tape::new();
        let mut rows = Vec::with_capacity(batch.len());
        let mut targets = Vec::with_capacity(batch.len());
        for ex in batch {
            let (h, mask_row) = self.template.forward(
                &mut tape,
                &self.lm.store,
                &self.lm.encoder,
                &ex.pair.ids_a,
                &ex.pair.ids_b,
                &mut self.rng,
            );
            rows.push(tape.slice_rows(h, mask_row, 1));
            targets.push(Self::target(ex.label));
        }
        let stacked = tape.concat_rows(&rows);
        let logits = self
            .lm
            .mlm
            .logits(&mut tape, &self.lm.store, &self.lm.encoder, stacked);
        let probs = self.verbalizer.class_probs(&mut tape, logits);
        let loss = tape.nll_probs(probs, &targets);
        if std::mem::take(&mut self.audit_pending) || em_nn::tape::sanitize_enabled() {
            em_check::audit_and_report(&tape, loss, &self.lm.store);
        }
        let value = tape.value(loss).item();
        if !value.is_finite() {
            // A poisoned batch must not propagate NaNs into the weights;
            // the epoch loop records it and skips the update.
            return value;
        }
        tape.backward(loss);
        tape.accumulate_param_grads(&mut self.lm.store);
        self.lm.store.clip_grad_norm(1.0);
        opt.step(&mut self.lm.store);
        value
    }

    fn snapshot(&self) -> ParamStore {
        self.lm.store.clone()
    }

    fn restore(&mut self, store: ParamStore) {
        self.lm.store = store;
    }
}

/// Shared epoch loop used by both PromptEM and the fine-tuning model; kept
/// free-standing so the two implementations cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub fn run_training<M: TunableMatcher>(
    model: &mut M,
    batch_step: &mut dyn FnMut(&mut M, &[&Example], &mut AdamW) -> f32,
    snapshot: &mut dyn FnMut(&M) -> ParamStore,
    restore: &mut dyn FnMut(&mut M, ParamStore),
    train: &[Example],
    valid: &[Example],
    cfg: &TrainCfg,
    prune: Option<&PruneCfg>,
) -> TrainReport {
    use em_resilience::{MAX_BAD_BATCH_RESTORES, MAX_CONSECUTIVE_BAD_BATCHES};

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5);
    let mut working: Vec<Example> = train.to_vec();
    let mut opt = AdamW::new(cfg.lr);
    let mut best_f1 = -1.0f64;
    let mut best_store: Option<(ParamStore, f32)> = None;
    let mut report = TrainReport::default();
    let mut consecutive_bad = 0u32;
    let mut restores_used = 0u32;
    let valid_pairs: Vec<crate::encode::EncodedPair> =
        valid.iter().map(|e| e.pair.clone()).collect();
    let valid_gold: Vec<bool> = valid.iter().map(|e| e.label).collect();

    // Total ticks are unknown until the first epoch reveals the chunk
    // count (balancing and pruning change it); re-estimated per epoch.
    let mut hb = em_obs::heartbeat("tune", 0);
    'epochs: for epoch in 0..cfg.epochs {
        let epoch_watch = em_obs::Stopwatch::if_enabled();
        working.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        // Class-balanced epoch pool: oversample positives so the tiny model
        // does not collapse onto the majority class (see TrainCfg::balance).
        let mut refs: Vec<&Example> = working.iter().collect();
        if cfg.balance {
            let pos: Vec<&Example> = working.iter().filter(|e| e.label).collect();
            let neg = working.len() - pos.len();
            if !pos.is_empty() && neg > pos.len() {
                let extra_total = neg - pos.len();
                for k in 0..extra_total {
                    refs.push(pos[k % pos.len()]);
                }
                refs.shuffle(&mut rng);
            }
        }
        if let Some(hb) = hb.as_mut() {
            let chunks = refs.len().div_ceil(cfg.batch_size) as u64;
            hb.set_total(report.batches_run as u64 + chunks * (cfg.epochs - epoch) as u64);
        }
        for batch in refs.chunks(cfg.batch_size) {
            let inject_nan = matches!(
                em_resilience::failpoint::trigger_in_batch("batch"),
                Some(em_resilience::failpoint::Action::Nan)
            );
            let mut loss = batch_step(model, batch, &mut opt);
            if inject_nan {
                loss = f32::NAN;
            }
            if !loss.is_finite() {
                // The models skip backward/step on a non-finite loss, so
                // the weights are still the last healthy ones; record the
                // recovery and move on without counting the batch.
                consecutive_bad += 1;
                em_obs::recovered_batch("tune", report.batches_run as u64, consecutive_bad as u64);
                if consecutive_bad >= MAX_CONSECUTIVE_BAD_BATCHES {
                    match &best_store {
                        Some((store, t)) if restores_used < MAX_BAD_BATCH_RESTORES => {
                            restore(model, store.clone());
                            model.set_threshold(*t);
                            restores_used += 1;
                            consecutive_bad = 0;
                            em_obs::warn(format!(
                                "{MAX_CONSECUTIVE_BAD_BATCHES} consecutive non-finite \
                                 losses; restored best-on-valid weights (epoch {epoch})"
                            ));
                        }
                        _ => {
                            em_obs::warn(format!(
                                "persistent non-finite losses (epoch {epoch}); \
                                 stopping this training early"
                            ));
                            break 'epochs;
                        }
                    }
                }
                continue;
            }
            consecutive_bad = 0;
            epoch_loss += loss;
            batches += 1;
            report.batches_run += 1;
            if let Some(hb) = hb.as_mut() {
                hb.tick(batch.len() as u64, Some(loss as f64));
            }
        }
        report.final_train_loss = if batches > 0 {
            epoch_loss / batches as f32
        } else {
            0.0
        };
        report.epochs_run += 1;

        let mut epoch_valid = None;
        if cfg.best_on_valid && !valid.is_empty() {
            // Calibrate the decision threshold on the validation set, then
            // track the best (weights, threshold) pair by validation F1.
            let probs = model.predict_proba(&valid_pairs);
            let t = crate::trainer::calibrate_threshold(&probs, &valid_gold);
            let pred: Vec<bool> = probs.iter().map(|&p| p > t).collect();
            let f1 = 100.0 * em_data::Confusion::from_pairs(&pred, &valid_gold).f1();
            epoch_valid = Some((f1, t));
            if f1 > best_f1 {
                best_f1 = f1;
                best_store = Some((snapshot(model), t));
            }
        }
        em_obs::epoch_summary(
            epoch as u64,
            report.final_train_loss as f64,
            epoch_valid.map(|(f1, _)| f1),
            epoch_valid.map(|(_, t)| t as f64),
            refs.len() as u64,
            batches as u64,
            epoch_watch.map_or(0, |w| w.micros()),
        );

        // Dynamic data pruning (§4.3): "We prune the train set for every
        // [frequency] epochs".
        if let Some(p) = prune {
            let is_prune_epoch = (epoch + 1) % p.every == 0 && epoch + 1 < cfg.epochs;
            if is_prune_epoch && working.len() > cfg.batch_size {
                let scores = crate::pruning::mc_el2n(model, &working, p.passes);
                let (kept, dropped) = crate::pruning::prune_lowest(working, &scores, p.e_r);
                working = kept;
                report.pruned += dropped;
                em_obs::prune(dropped as u64, p.passes as u64);
            }
        }
    }
    if let Some((store, t)) = best_store {
        restore(model, store);
        model.set_threshold(t);
        report.best_valid_f1 = best_f1;
    } else if !valid.is_empty() {
        report.best_valid_f1 = crate::trainer::evaluate(model, valid).f1;
    }
    report
}

impl TunableMatcher for PromptEmModel {
    fn fresh(&self, seed: u64) -> Self {
        PromptEmModel::new(self.backbone.clone(), self.opts.clone(), seed)
    }

    fn train(
        &mut self,
        train: &[Example],
        valid: &[Example],
        cfg: &TrainCfg,
        prune: Option<&PruneCfg>,
    ) -> TrainReport {
        run_training(
            self,
            &mut |m, b, o| m.batch_step(b, o),
            &mut |m| m.snapshot(),
            &mut |m, s| m.restore(s),
            train,
            valid,
            cfg,
            prune,
        )
    }

    fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
        // Inference draws nothing from the RNG (dropout is off), so chunks
        // are fully independent: shard them across the pool with throwaway
        // per-worker RNGs. Values are bit-identical to a sequential run —
        // every row-wise kernel computes each output row independently, so
        // neither chunking nor worker assignment changes a bit.
        let cached_rows = self.template.prompt_rows_matrix(&self.lm.store);
        let cached = cached_rows.as_ref();
        let chunks: Vec<&[EncodedPair]> = pairs.chunks(SCORE_CHUNK).collect();
        let (lm, template, verbalizer) = (&self.lm, &self.template, &self.verbalizer);
        em_pool::run_sharded(em_pool::threads(), chunks.len(), |i| {
            let refs: Vec<&EncodedPair> = chunks[i].iter().collect();
            let mut tape = NoGradTape::inference();
            let mut rng = StdRng::seed_from_u64(0);
            forward_probs_on(&mut tape, lm, template, verbalizer, cached, &refs, &mut rng)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
        // One logical RNG stream regardless of thread count: with a single
        // worker the model's own RNG is used directly (byte-for-byte the
        // historical sequential behavior); with several, the main thread
        // computes each chunk's start state by fast-forwarding a clone with
        // the analytic draw counts, workers resume from those states, and
        // every worker's end state is checked against the next boundary —
        // any drift between formula and kernels aborts instead of silently
        // changing pseudo-label decisions. Sharding lives *inside* each
        // pass so the per-pass spans emitted by run_passes stay honest.
        let cached_rows = self.template.prompt_rows_matrix(&self.lm.store);
        let cached = cached_rows.as_ref();
        let chunks: Vec<&[EncodedPair]> = pairs.chunks(SCORE_CHUNK).collect();
        let threads = em_pool::threads();
        let boundaries: Vec<u64> = if threads > 1 {
            chunks.iter().map(|c| self.chunk_draws(c)).collect()
        } else {
            Vec::new()
        };
        let (lm, template, verbalizer) = (&self.lm, &self.template, &self.verbalizer);
        let rng = &mut self.rng;
        em_lm::mc_dropout::run_passes(passes, |_| {
            if threads <= 1 || chunks.len() <= 1 {
                let mut out = Vec::with_capacity(pairs.len());
                for chunk in &chunks {
                    let refs: Vec<&EncodedPair> = chunk.iter().collect();
                    let mut tape = NoGradTape::new(); // dropout active
                    out.extend(forward_probs_on(
                        &mut tape, lm, template, verbalizer, cached, &refs, rng,
                    ));
                }
                return out;
            }
            let mut walker = rng.clone();
            let mut states = Vec::with_capacity(chunks.len() + 1);
            for &draws in &boundaries {
                states.push(walker.state());
                for _ in 0..draws {
                    walker.next_u64();
                }
            }
            states.push(walker.state());
            let states = &states;
            let results = em_pool::run_sharded(threads, chunks.len(), |i| {
                let refs: Vec<&EncodedPair> = chunks[i].iter().collect();
                let mut wrng = StdRng::from_state(states[i]);
                let mut tape = NoGradTape::new();
                let probs = forward_probs_on(
                    &mut tape, lm, template, verbalizer, cached, &refs, &mut wrng,
                );
                (probs, wrng.state())
            });
            let mut out = Vec::with_capacity(pairs.len());
            for (i, (probs, end_state)) in results.into_iter().enumerate() {
                assert_eq!(
                    end_state,
                    states[i + 1],
                    "chunk {i}: worker RNG drifted from the analytic draw count"
                );
                out.extend(probs);
            }
            *rng = StdRng::from_state(states[chunks.len()]);
            out
        })
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f32) {
        self.threshold = t;
    }

    fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
        let cached_rows = self.template.prompt_rows_matrix(&self.lm.store);
        let cached = cached_rows.as_ref();
        let mut out = Vec::with_capacity(pairs.len());
        for p in pairs {
            let mut tape = NoGradTape::inference();
            let h = self.template.forward_mask_row(
                &mut tape,
                &self.lm.store,
                &self.lm.encoder,
                &p.ids_a,
                &p.ids_b,
                cached,
                &mut self.rng,
            );
            out.push(tape.value(h).row(0).to_vec());
        }
        out
    }

    fn export_state(&self) -> Option<crate::resume::MatcherState> {
        let mut params = Vec::new();
        em_nn::io::write_params(&self.lm.store, &mut params).ok()?;
        Some(crate::resume::MatcherState {
            params,
            threshold: self.threshold,
            rng: self.rng.state(),
        })
    }

    fn import_state(&mut self, state: &crate::resume::MatcherState) -> bool {
        if em_nn::io::read_params(&mut self.lm.store, &mut &state.params[..]).is_err() {
            return false;
        }
        self.threshold = state.threshold;
        self.rng = StdRng::from_state(state.rng);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_backbone, toy_examples};

    #[test]
    fn model_learns_toy_task() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 40, 1);
        let mut model = PromptEmModel::new(backbone, PromptOpts::default(), 3);
        let cfg = TrainCfg {
            epochs: 8,
            ..Default::default()
        };
        let report = model.train(&train, &valid, &cfg, None);
        assert!(report.epochs_run == 8);
        let f1 = crate::trainer::evaluate(&mut model, &valid).f1;
        assert!(f1 > 60.0, "prompt model failed to learn: F1 {f1}");
    }

    #[test]
    fn probabilities_are_valid() {
        let backbone = tiny_backbone();
        let (train, _) = toy_examples(&backbone, 10, 2);
        let mut model = PromptEmModel::new(backbone, PromptOpts::default(), 4);
        let pairs: Vec<EncodedPair> = train.iter().map(|e| e.pair.clone()).collect();
        for p in model.predict_proba(&pairs) {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
    }

    #[test]
    fn stochastic_passes_vary_deterministic_do_not() {
        let backbone = tiny_backbone();
        let (train, _) = toy_examples(&backbone, 6, 3);
        let mut model = PromptEmModel::new(backbone, PromptOpts::default(), 5);
        let pairs: Vec<EncodedPair> = train.iter().map(|e| e.pair.clone()).collect();
        let a = model.predict_proba(&pairs);
        let b = model.predict_proba(&pairs);
        assert_eq!(a, b, "inference must be deterministic");
        let passes = model.stochastic_proba(&pairs, 4);
        let any_diff = passes.iter().any(|p| p != &passes[0]);
        assert!(any_diff, "MC-dropout passes identical — dropout inactive?");
    }

    #[test]
    fn fresh_resets_to_backbone() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 20, 6);
        let mut model = PromptEmModel::new(backbone, PromptOpts::default(), 6);
        let cfg = TrainCfg {
            epochs: 2,
            ..Default::default()
        };
        model.train(&train, &valid, &cfg, None);
        let pairs: Vec<EncodedPair> = valid.iter().map(|e| e.pair.clone()).collect();
        let tuned = model.predict_proba(&pairs);
        let mut fresh = model.fresh(999);
        let reset = fresh.predict_proba(&pairs);
        assert_ne!(tuned, reset, "fresh() did not reset the weights");
    }

    #[test]
    fn tape_free_scoring_is_bit_exact_with_the_recording_tape() {
        let backbone = tiny_backbone();
        let (train, _) = toy_examples(&backbone, 8, 11);
        let model = PromptEmModel::new(backbone, PromptOpts::default(), 7);
        let pairs: Vec<&EncodedPair> = train.iter().map(|e| &e.pair).collect();
        let rows = model.template.prompt_rows_matrix(&model.lm.store);
        // Train-mode tapes with twin RNG streams: the recording tape runs
        // the prompt stack per pair, the tape-free one splices the cached
        // rows — same values, same draws, zero nodes recorded.
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = rng_a.clone();
        let mut taped = Tape::new();
        let a = forward_probs_on(
            &mut taped,
            &model.lm,
            &model.template,
            &model.verbalizer,
            None,
            &pairs,
            &mut rng_a,
        );
        let nodes_before = em_nn::tape::nodes_recorded_on_thread();
        let mut free = NoGradTape::new();
        let b = forward_probs_on(
            &mut free,
            &model.lm,
            &model.template,
            &model.verbalizer,
            rows.as_ref(),
            &pairs,
            &mut rng_b,
        );
        assert_eq!(
            em_nn::tape::nodes_recorded_on_thread(),
            nodes_before,
            "tape-free scoring recorded tape nodes"
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "probs diverged: {x} vs {y}");
        }
        assert_eq!(rng_a.state(), rng_b.state(), "RNG streams diverged");
    }

    #[test]
    fn sharded_scoring_matches_single_thread_bit_for_bit() {
        let backbone = tiny_backbone();
        let (train, _) = toy_examples(&backbone, 120, 9); // 90 pairs: 3 chunks
        let pairs: Vec<EncodedPair> = train.iter().map(|e| e.pair.clone()).collect();
        let run = |threads: usize| {
            em_pool::set_threads(threads);
            let mut model = PromptEmModel::new(backbone.clone(), PromptOpts::default(), 5);
            let det = model.predict_proba(&pairs);
            let sto = model.stochastic_proba(&pairs, 3);
            em_pool::set_threads(0);
            (det, sto, model.rng.state())
        };
        let (det1, sto1, rng1) = run(1);
        let (det3, sto3, rng3) = run(3);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&det1), bits(&det3), "deterministic scoring diverged");
        assert_eq!(sto1.len(), sto3.len());
        for (p1, p3) in sto1.iter().zip(&sto3) {
            assert_eq!(bits(p1), bits(p3), "stochastic pass diverged");
        }
        assert_eq!(rng1, rng3, "model RNG ended in different states");
    }

    #[test]
    fn embeddings_have_model_width() {
        let backbone = tiny_backbone();
        let d = backbone.d_model();
        let (train, _) = toy_examples(&backbone, 4, 7);
        let mut model = PromptEmModel::new(backbone, PromptOpts::default(), 8);
        let pairs: Vec<EncodedPair> = train.iter().map(|e| e.pair.clone()).collect();
        for e in model.embed(&pairs) {
            assert_eq!(e.len(), d);
        }
    }
}
