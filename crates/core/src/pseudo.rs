//! Pseudo-label selection strategies (paper §4.2 and Table 5):
//! uncertainty-aware (MC-Dropout, the PromptEM choice), confidence-based,
//! and clustering-based.

use crate::encode::{EncodedPair, Example};
use crate::trainer::TunableMatcher;
use em_lm::mc_dropout::mean_std;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The selection strategies compared in §5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Eq. 2: take the `u_r` fraction with the *least* MC-Dropout
    /// uncertainty (std over stochastic passes).
    Uncertainty,
    /// Take the top fraction by prediction confidence `max(p, 1-p)`.
    Confidence,
    /// k-means (k=2) on pair embeddings; take the samples closest to their
    /// cluster centroid (following Dopierre et al.).
    Clustering,
}

/// A selected pseudo-labeled example: index into the unlabeled pool plus
/// the teacher-assigned label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PseudoLabel {
    /// Index into the unlabeled pool.
    pub index: usize,
    /// The teacher-assigned label.
    pub label: bool,
}

/// Configuration of pseudo-label selection.
#[derive(Debug, Clone)]
pub struct PseudoCfg {
    /// Which selection strategy to use.
    pub strategy: SelectionStrategy,
    /// `u_r`: fraction of the unlabeled pool to select (§4.2, Eq. 2).
    pub u_r: f64,
    /// MC-Dropout passes (10 in the paper).
    pub passes: usize,
    /// RNG seed (clustering initialization).
    pub seed: u64,
}

impl Default for PseudoCfg {
    fn default() -> Self {
        PseudoCfg {
            strategy: SelectionStrategy::Uncertainty,
            u_r: 0.15,
            passes: 10,
            seed: 11,
        }
    }
}

/// Select pseudo-labels from the unlabeled pool using the teacher model.
pub fn select_pseudo_labels<M: TunableMatcher>(
    teacher: &mut M,
    unlabeled: &[EncodedPair],
    cfg: &PseudoCfg,
) -> Vec<PseudoLabel> {
    if unlabeled.is_empty() {
        return Vec::new();
    }
    let n_p = ((unlabeled.len() as f64) * cfg.u_r).round().max(1.0) as usize;
    let n_p = n_p.min(unlabeled.len());
    match cfg.strategy {
        SelectionStrategy::Uncertainty => {
            // Child spans split the former single-blob phase: MC-Dropout
            // scoring dominates, so the op-profiler flushes inside the
            // scoring span to pin its tape ops to that child.
            let per_pass = {
                let _span = em_obs::span(em_obs::names::SPAN_PSEUDO_SCORE);
                let per_pass = teacher.stochastic_proba(unlabeled, cfg.passes);
                em_nn::tape::flush_op_stats();
                per_pass
            };
            let (mean, std) = {
                let _span = em_obs::span(em_obs::names::SPAN_PSEUDO_UNCERTAINTY);
                let (mean, std) = mean_std(&per_pass);
                if em_obs::enabled() {
                    let scores: Vec<f64> = std.iter().map(|&v| v as f64).collect();
                    em_obs::unc_hist("pseudo_uncertainty", &scores, 16);
                }
                (mean, std)
            };
            // Top-N_P by (negative) uncertainty — Eq. 2.
            let _span = em_obs::span(em_obs::names::SPAN_PSEUDO_RANK);
            let order = argsort(&std);
            order
                .into_iter()
                .take(n_p)
                .map(|i| PseudoLabel {
                    index: i,
                    label: mean[i] > 0.5,
                })
                .collect()
        }
        SelectionStrategy::Confidence => {
            let probs = teacher.predict_proba(unlabeled);
            let conf: Vec<f32> = probs.iter().map(|&p| p.max(1.0 - p)).collect();
            let mut order = argsort(&conf);
            order.reverse(); // highest confidence first
            order
                .into_iter()
                .take(n_p)
                .map(|i| PseudoLabel {
                    index: i,
                    label: probs[i] > 0.5,
                })
                .collect()
        }
        SelectionStrategy::Clustering => {
            let embeddings = teacher.embed(unlabeled);
            let probs = teacher.predict_proba(unlabeled);
            let assignment = kmeans2(&embeddings, 20, cfg.seed);
            // Distance to own centroid; closest samples are most prototypical.
            let dist: Vec<f32> = embeddings
                .iter()
                .zip(&assignment.labels)
                .map(|(e, &c)| l2(e, &assignment.centroids[c]))
                .collect();
            let order = argsort(&dist);
            order
                .into_iter()
                .take(n_p)
                .map(|i| PseudoLabel {
                    index: i,
                    label: probs[i] > 0.5,
                })
                .collect()
        }
    }
}

/// Materialize selected pseudo-labels as training examples and report which
/// pool indices were consumed (Algorithm 1 lines 6–8: D_P moves from D_U
/// into D_L).
pub fn apply_pseudo_labels(
    unlabeled: &[EncodedPair],
    selected: &[PseudoLabel],
) -> (Vec<Example>, Vec<usize>) {
    let examples = selected
        .iter()
        .map(|pl| Example {
            pair: unlabeled[pl.index].clone(),
            label: pl.label,
        })
        .collect();
    let consumed = selected.iter().map(|pl| pl.index).collect();
    (examples, consumed)
}

/// Audit pseudo-label quality against gold labels: returns (TPR, TNR) as in
/// §5.5 — TPR = fraction of *matched* selected pairs labeled correctly,
/// TNR = fraction of *mismatched* selected pairs labeled correctly.
pub fn pseudo_label_quality(selected: &[PseudoLabel], gold: &[bool]) -> (f64, f64) {
    let (mut tp, mut fn_, mut tn, mut fp) = (0usize, 0usize, 0usize, 0usize);
    for pl in selected {
        match (gold[pl.index], pl.label) {
            (true, true) => tp += 1,
            (true, false) => fn_ += 1,
            (false, false) => tn += 1,
            (false, true) => fp += 1,
        }
    }
    let tpr = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let tnr = if tn + fp == 0 {
        1.0
    } else {
        tn as f64 / (tn + fp) as f64
    };
    (tpr, tnr)
}

fn argsort(xs: &[f32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

struct KmeansResult {
    labels: Vec<usize>,
    centroids: Vec<Vec<f32>>,
}

/// Tiny k-means with k=2 and deterministic seeding.
fn kmeans2(points: &[Vec<f32>], iters: usize, seed: u64) -> KmeansResult {
    let n = points.len();
    let d = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    let first = rng.gen_range(0..n);
    // Second seed: the point farthest from the first (k-means++-ish).
    let second = (0..n)
        .max_by(|&a, &b| {
            l2(&points[a], &points[first])
                .partial_cmp(&l2(&points[b], &points[first]))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or((first + 1) % n);
    let mut centroids = vec![points[first].clone(), points[second].clone()];
    let mut labels = vec![0usize; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let c = if l2(p, &centroids[0]) <= l2(p, &centroids[1]) {
                0
            } else {
                1
            };
            if labels[i] != c {
                labels[i] = c;
                changed = true;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f32>> = points
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut mean = vec![0.0f32; d];
            for m in &members {
                for (o, &v) in mean.iter_mut().zip(m.iter()) {
                    *o += v;
                }
            }
            for o in &mut mean {
                *o /= members.len() as f32;
            }
            *centroid = mean;
        }
        if !changed {
            break;
        }
    }
    KmeansResult { labels, centroids }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncodedPair;
    use crate::trainer::{PruneCfg, TrainCfg, TrainReport};

    /// Stub teacher: per-index mean probability and per-index noise scale.
    struct Stub {
        mean: Vec<f32>,
        noise: Vec<f32>,
        tick: std::cell::Cell<u64>,
    }

    impl Stub {
        fn new(mean: Vec<f32>, noise: Vec<f32>) -> Self {
            Stub {
                mean,
                noise,
                tick: std::cell::Cell::new(0),
            }
        }
    }

    impl TunableMatcher for Stub {
        fn fresh(&self, _: u64) -> Self {
            Stub::new(self.mean.clone(), self.noise.clone())
        }
        fn train(
            &mut self,
            _: &[Example],
            _: &[Example],
            _: &TrainCfg,
            _: Option<&PruneCfg>,
        ) -> TrainReport {
            Default::default()
        }
        fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
            pairs.iter().map(|p| self.mean[p.ids_a[0]]).collect()
        }
        fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
            (0..passes)
                .map(|_| {
                    self.tick.set(self.tick.get() + 1);
                    let sign = if self.tick.get().is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    pairs
                        .iter()
                        .map(|p| {
                            let i = p.ids_a[0];
                            (self.mean[i] + sign * self.noise[i]).clamp(0.0, 1.0)
                        })
                        .collect()
                })
                .collect()
        }
        fn set_threshold(&mut self, _t: f32) {}
        fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
            pairs
                .iter()
                .map(|p| vec![self.mean[p.ids_a[0]], 0.0])
                .collect()
        }
    }

    fn pool(n: usize) -> Vec<EncodedPair> {
        (0..n)
            .map(|i| EncodedPair {
                ids_a: vec![i],
                ids_b: vec![i],
            })
            .collect()
    }

    #[test]
    fn uncertainty_picks_least_noisy() {
        // Samples 0..3 are stable, 4..7 noisy.
        let mean = vec![0.9, 0.1, 0.8, 0.2, 0.5, 0.5, 0.6, 0.4];
        let noise = vec![0.01, 0.01, 0.01, 0.01, 0.4, 0.4, 0.4, 0.4];
        let mut stub = Stub::new(mean, noise);
        let cfg = PseudoCfg {
            u_r: 0.5,
            ..Default::default()
        };
        let sel = select_pseudo_labels(&mut stub, &pool(8), &cfg);
        assert_eq!(sel.len(), 4);
        let idx: Vec<usize> = sel.iter().map(|p| p.index).collect();
        for i in idx {
            assert!(i < 4, "picked a noisy sample {i}");
        }
        // Labels follow the mean prediction.
        for pl in &sel {
            assert_eq!(pl.label, [true, false, true, false][pl.index]);
        }
    }

    #[test]
    fn confidence_picks_extreme_probabilities() {
        let mean = vec![0.99, 0.51, 0.49, 0.01];
        let noise = vec![0.0; 4];
        let mut stub = Stub::new(mean, noise);
        let cfg = PseudoCfg {
            strategy: SelectionStrategy::Confidence,
            u_r: 0.5,
            ..Default::default()
        };
        let sel = select_pseudo_labels(&mut stub, &pool(4), &cfg);
        let mut idx: Vec<usize> = sel.iter().map(|p| p.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 3]);
    }

    #[test]
    fn clustering_selects_prototypical_points() {
        // Two tight clusters around 0.1 and 0.9, plus two outliers at 0.5.
        let mean = vec![0.1, 0.12, 0.9, 0.88, 0.5, 0.52];
        let noise = vec![0.0; 6];
        let mut stub = Stub::new(mean, noise);
        let cfg = PseudoCfg {
            strategy: SelectionStrategy::Clustering,
            u_r: 0.67,
            ..Default::default()
        };
        let sel = select_pseudo_labels(&mut stub, &pool(6), &cfg);
        let idx: Vec<usize> = sel.iter().map(|p| p.index).collect();
        assert!(
            !idx.contains(&4) || !idx.contains(&5),
            "both outliers selected: {idx:?}"
        );
    }

    #[test]
    fn apply_moves_examples_with_teacher_labels() {
        let u = pool(5);
        let sel = vec![
            PseudoLabel {
                index: 3,
                label: true,
            },
            PseudoLabel {
                index: 0,
                label: false,
            },
        ];
        let (exs, consumed) = apply_pseudo_labels(&u, &sel);
        assert_eq!(exs.len(), 2);
        assert_eq!(exs[0].pair.ids_a, vec![3]);
        assert!(exs[0].label);
        assert_eq!(consumed, vec![3, 0]);
    }

    #[test]
    fn quality_metrics_match_definitions() {
        let gold = vec![true, true, false, false];
        let sel = vec![
            PseudoLabel {
                index: 0,
                label: true,
            }, // TP
            PseudoLabel {
                index: 1,
                label: false,
            }, // FN
            PseudoLabel {
                index: 2,
                label: false,
            }, // TN
            PseudoLabel {
                index: 3,
                label: true,
            }, // FP
        ];
        let (tpr, tnr) = pseudo_label_quality(&sel, &gold);
        assert!((tpr - 0.5).abs() < 1e-12);
        assert!((tnr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn u_r_controls_selection_size() {
        let mut stub = Stub::new(vec![0.5; 20], vec![0.0; 20]);
        for (u_r, expect) in [(0.1, 2), (0.25, 5), (1.0, 20)] {
            let cfg = PseudoCfg {
                u_r,
                ..Default::default()
            };
            let sel = select_pseudo_labels(&mut stub, &pool(20), &cfg);
            assert_eq!(sel.len(), expect);
        }
    }

    #[test]
    fn empty_pool_returns_nothing() {
        let mut stub = Stub::new(vec![], vec![]);
        let sel = select_pseudo_labels(&mut stub, &[], &PseudoCfg::default());
        assert!(sel.is_empty());
    }
}
