//! Dynamic data pruning via MC-EL2N (paper §4.3).
//!
//! EL2N (Paul et al.) scores a training example by the L2 norm of the error
//! vector `‖p(x) − y‖₂`; PromptEM stabilizes it by averaging over `n`
//! MC-Dropout stochastic passes:
//! `MC-EL2N(x, y) = (Σᵢ ‖Mᵢ(x) − y‖₂) / n`.
//! Examples with the *lowest* scores are the easy, already-learned ones and
//! are pruned (Eq. 3).

use crate::encode::{EncodedPair, Example};
use crate::trainer::TunableMatcher;

/// MC-EL2N scores for labeled examples. For a binary model emitting a
/// normalized match probability `p`, the per-pass error norm is
/// `‖(p, 1−p) − onehot(y)‖₂ = √2·|p − y|`.
pub fn mc_el2n<M: TunableMatcher>(model: &mut M, examples: &[Example], passes: usize) -> Vec<f32> {
    let pairs: Vec<EncodedPair> = examples.iter().map(|e| e.pair.clone()).collect();
    let per_pass = model.stochastic_proba(&pairs, passes);
    let mut scores = vec![0.0f32; examples.len()];
    for pass in &per_pass {
        for ((s, &p), ex) in scores.iter_mut().zip(pass).zip(examples) {
            let y = if ex.label { 1.0 } else { 0.0 };
            *s += std::f32::consts::SQRT_2 * (p - y).abs();
        }
    }
    for s in &mut scores {
        *s /= per_pass.len() as f32;
    }
    if em_obs::enabled() {
        let as_f64: Vec<f64> = scores.iter().map(|&v| v as f64).collect();
        em_obs::unc_hist("mc_el2n", &as_f64, 16);
    }
    scores
}

/// Eq. 3: drop the `e_r` fraction with the lowest scores; returns the kept
/// examples and the number dropped. Order of survivors is preserved.
pub fn prune_lowest(examples: Vec<Example>, scores: &[f32], e_r: f64) -> (Vec<Example>, usize) {
    assert_eq!(examples.len(), scores.len());
    let n_drop = ((examples.len() as f64) * e_r).floor() as usize;
    if n_drop == 0 {
        return (examples, 0);
    }
    // Find the threshold: the n_drop-th smallest score.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut drop = vec![false; scores.len()];
    for &i in order.iter().take(n_drop) {
        drop[i] = true;
    }
    let kept: Vec<Example> = examples
        .into_iter()
        .zip(drop.iter())
        .filter(|(_, &d)| !d)
        .map(|(e, _)| e)
        .collect();
    (kept, n_drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncodedPair;

    fn ex(label: bool, tag: usize) -> Example {
        Example {
            pair: EncodedPair {
                ids_a: vec![tag],
                ids_b: vec![tag],
            },
            label,
        }
    }

    /// A stub matcher returning fixed probabilities keyed by ids_a[0].
    struct Stub(Vec<f32>);
    impl TunableMatcher for Stub {
        fn fresh(&self, _: u64) -> Self {
            Stub(self.0.clone())
        }
        fn train(
            &mut self,
            _: &[Example],
            _: &[Example],
            _: &crate::trainer::TrainCfg,
            _: Option<&crate::trainer::PruneCfg>,
        ) -> crate::trainer::TrainReport {
            Default::default()
        }
        fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
            pairs.iter().map(|p| self.0[p.ids_a[0]]).collect()
        }
        fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
            (0..passes).map(|_| self.predict_proba(pairs)).collect()
        }
        fn set_threshold(&mut self, _t: f32) {}
        fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
            pairs.iter().map(|p| vec![self.0[p.ids_a[0]]]).collect()
        }
    }

    #[test]
    fn el2n_is_low_for_confidently_correct_examples() {
        // probs: ex0 predicted 0.95 (label true: easy), ex1 predicted 0.6
        // (label true: medium), ex2 predicted 0.1 (label true: hard/wrong).
        let mut stub = Stub(vec![0.95, 0.6, 0.1]);
        let exs = vec![ex(true, 0), ex(true, 1), ex(true, 2)];
        let scores = mc_el2n(&mut stub, &exs, 3);
        assert!(scores[0] < scores[1] && scores[1] < scores[2], "{scores:?}");
        // Exact value: sqrt(2) * |0.95 - 1| = 0.0707…
        assert!((scores[0] - std::f32::consts::SQRT_2 * 0.05).abs() < 1e-5);
    }

    #[test]
    fn prune_drops_exactly_the_requested_fraction() {
        let exs: Vec<Example> = (0..10).map(|i| ex(true, i)).collect();
        let scores: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let (kept, dropped) = prune_lowest(exs, &scores, 0.3);
        assert_eq!(dropped, 3);
        assert_eq!(kept.len(), 7);
        // The three lowest-scored (ids 0,1,2) are gone; order preserved.
        let ids: Vec<usize> = kept.iter().map(|e| e.pair.ids_a[0]).collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn prune_zero_fraction_is_identity() {
        let exs: Vec<Example> = (0..5).map(|i| ex(false, i)).collect();
        let scores = vec![1.0; 5];
        let (kept, dropped) = prune_lowest(exs, &scores, 0.0);
        assert_eq!(dropped, 0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn prune_never_exceeds_fraction() {
        for n in [1usize, 3, 7, 100] {
            let exs: Vec<Example> = (0..n).map(|i| ex(true, i)).collect();
            let scores: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
            let (kept, dropped) = prune_lowest(exs, &scores, 0.5);
            assert_eq!(dropped, n / 2);
            assert_eq!(kept.len(), n - n / 2);
        }
    }
}
