//! Uncertainty-driven *active labeling* — the dual of §4.2's pseudo-label
//! selection, and the extension the paper's related-work section points at
//! (Kasai et al., "Low-resource Deep Entity Resolution with Transfer and
//! Active Learning"). Where self-training consumes the *least* uncertain
//! unlabeled samples (safe pseudo-labels), an annotation budget is best
//! spent on the *most* uncertain ones.

use crate::encode::{EncodedPair, Example};
use crate::trainer::TunableMatcher;
use em_lm::mc_dropout::mean_std;

/// Ranking criterion for the labeling budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquisitionStrategy {
    /// Highest MC-Dropout std first (epistemic uncertainty).
    Uncertainty,
    /// Closest to the decision boundary first (|p − 0.5| ascending).
    Margin,
}

/// Pick `budget` pool indices to send to an annotator.
pub fn select_for_labeling<M: TunableMatcher>(
    model: &mut M,
    pool: &[EncodedPair],
    budget: usize,
    strategy: AcquisitionStrategy,
    passes: usize,
) -> Vec<usize> {
    if pool.is_empty() || budget == 0 {
        return Vec::new();
    }
    let scores: Vec<f32> = match strategy {
        AcquisitionStrategy::Uncertainty => {
            let per_pass = model.stochastic_proba(pool, passes);
            let (_, std) = mean_std(&per_pass);
            std
        }
        AcquisitionStrategy::Margin => model
            .predict_proba(pool)
            .iter()
            .map(|&p| -(p - 0.5).abs())
            .collect(),
    };
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(budget.min(pool.len()));
    order
}

/// One round of simulated active learning: select, reveal gold labels,
/// retrain on the grown train set. Returns the selected indices and the new
/// validation F1 (the caller owns split bookkeeping).
#[allow(clippy::too_many_arguments)]
pub fn active_round<M: TunableMatcher>(
    model: &mut M,
    train: &mut Vec<Example>,
    pool: &mut Vec<EncodedPair>,
    pool_gold: &mut Vec<bool>,
    valid: &[Example],
    budget: usize,
    strategy: AcquisitionStrategy,
    cfg: &crate::trainer::TrainCfg,
) -> (usize, f64) {
    let picked = select_for_labeling(model, pool, budget, strategy, 5);
    // Reveal labels (simulated annotator) and move into the train set.
    let mut drop = vec![false; pool.len()];
    for &i in &picked {
        train.push(Example {
            pair: pool[i].clone(),
            label: pool_gold[i],
        });
        drop[i] = true;
    }
    let mut keep = drop.iter().copied();
    // lint:allow(unwrap) — the mask was built to pool.len()
    pool.retain(|_| !keep.next().unwrap());
    let mut keep = drop.iter().copied();
    // lint:allow(unwrap) — the mask was built to pool.len()
    pool_gold.retain(|_| !keep.next().unwrap());

    let mut fresh = model.fresh(cfg.seed ^ 0xAC71);
    fresh.train(train, valid, cfg, None);
    *model = fresh;
    let f1 = crate::trainer::evaluate(model, valid).f1;
    (picked.len(), f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{PruneCfg, TrainCfg, TrainReport};

    /// Stub: per-index mean probability and noise level.
    struct Stub {
        mean: Vec<f32>,
        noise: Vec<f32>,
        flip: std::cell::Cell<bool>,
    }

    impl TunableMatcher for Stub {
        fn fresh(&self, _: u64) -> Self {
            Stub {
                mean: self.mean.clone(),
                noise: self.noise.clone(),
                flip: std::cell::Cell::new(false),
            }
        }
        fn train(
            &mut self,
            _: &[Example],
            _: &[Example],
            _: &TrainCfg,
            _: Option<&PruneCfg>,
        ) -> TrainReport {
            Default::default()
        }
        fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
            pairs.iter().map(|p| self.mean[p.ids_a[0]]).collect()
        }
        fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
            (0..passes)
                .map(|_| {
                    self.flip.set(!self.flip.get());
                    let sign = if self.flip.get() { 1.0 } else { -1.0 };
                    pairs
                        .iter()
                        .map(|p| {
                            let i = p.ids_a[0];
                            (self.mean[i] + sign * self.noise[i]).clamp(0.0, 1.0)
                        })
                        .collect()
                })
                .collect()
        }
        fn set_threshold(&mut self, _: f32) {}
        fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
            pairs.iter().map(|p| vec![self.mean[p.ids_a[0]]]).collect()
        }
    }

    fn pool(n: usize) -> Vec<EncodedPair> {
        (0..n)
            .map(|i| EncodedPair {
                ids_a: vec![i],
                ids_b: vec![i],
            })
            .collect()
    }

    #[test]
    fn uncertainty_acquisition_prefers_noisy_samples() {
        let mut stub = Stub {
            mean: vec![0.9, 0.5, 0.1, 0.5],
            noise: vec![0.0, 0.3, 0.0, 0.3],
            flip: std::cell::Cell::new(false),
        };
        let picked =
            select_for_labeling(&mut stub, &pool(4), 2, AcquisitionStrategy::Uncertainty, 4);
        let mut p = picked.clone();
        p.sort_unstable();
        assert_eq!(p, vec![1, 3]);
    }

    #[test]
    fn margin_acquisition_prefers_boundary_samples() {
        let mut stub = Stub {
            mean: vec![0.9, 0.52, 0.05, 0.48],
            noise: vec![0.0; 4],
            flip: std::cell::Cell::new(false),
        };
        let picked = select_for_labeling(&mut stub, &pool(4), 2, AcquisitionStrategy::Margin, 1);
        let mut p = picked.clone();
        p.sort_unstable();
        assert_eq!(p, vec![1, 3]);
    }

    #[test]
    fn active_round_moves_samples_from_pool_to_train() {
        let mut stub = Stub {
            mean: (0..10).map(|i| i as f32 / 10.0).collect(),
            noise: vec![0.1; 10],
            flip: std::cell::Cell::new(false),
        };
        let mut train = Vec::new();
        let mut p = pool(10);
        let mut gold: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let valid: Vec<Example> = (0..4)
            .map(|i| Example {
                pair: EncodedPair {
                    ids_a: vec![i],
                    ids_b: vec![i],
                },
                label: true,
            })
            .collect();
        let cfg = TrainCfg {
            epochs: 1,
            ..Default::default()
        };
        let (n, f1) = active_round(
            &mut stub,
            &mut train,
            &mut p,
            &mut gold,
            &valid,
            3,
            AcquisitionStrategy::Uncertainty,
            &cfg,
        );
        assert_eq!(n, 3);
        assert_eq!(train.len(), 3);
        assert_eq!(p.len(), 7);
        assert_eq!(gold.len(), 7);
        assert!(f1.is_finite());
    }

    #[test]
    fn zero_budget_or_empty_pool_selects_nothing() {
        let mut stub = Stub {
            mean: vec![0.5],
            noise: vec![0.1],
            flip: std::cell::Cell::new(false),
        };
        assert!(
            select_for_labeling(&mut stub, &pool(1), 0, AcquisitionStrategy::Margin, 1).is_empty()
        );
        assert!(select_for_labeling(&mut stub, &[], 3, AcquisitionStrategy::Margin, 1).is_empty());
    }
}
