//! Vanilla fine-tuning (paper §2.3): `[CLS] a [SEP] b [SEP]` through the
//! encoder, then a *freshly initialized* classification head over the
//! `[CLS]` embedding. This is both the "BERT" baseline and the
//! "PromptEM w/o PT" ablation — the objective-form gap the paper's
//! Challenge I describes is exactly the difference between this model and
//! [`crate::model::PromptEmModel`].

use crate::encode::{EncodedPair, Example};
use crate::model::run_training;
use crate::trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};
use em_lm::tokenizer::{CLS, SEP};
use em_lm::{ClsHead, PretrainedLm};
use em_nn::{AdamW, NoGradTape, ParamStore, Tape, TapeExec, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A fine-tuned sequence-pair classifier on the shared backbone. Cloning
/// snapshots the whole model, like [`crate::model::PromptEmModel`].
#[derive(Clone)]
pub struct FineTuneModel {
    backbone: Arc<PretrainedLm>,
    /// The working copy of the backbone (tuned in place).
    pub lm: PretrainedLm,
    /// The freshly-initialized classification head.
    pub head: ClsHead,
    threshold: f32,
    rng: StdRng,
    /// One-shot graph audit on the first training step (every step when
    /// the sanitizer is on): the fresh head is exactly the "bolted on
    /// but never wired to the loss" risk the auditor exists for.
    audit_pending: bool,
}

impl FineTuneModel {
    /// Clone the backbone and bolt on a fresh classification head.
    pub fn new(backbone: Arc<PretrainedLm>, seed: u64) -> Self {
        let mut lm = (*backbone).clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = ClsHead::new(&mut lm.store, &lm.encoder, 2, &mut rng);
        FineTuneModel {
            backbone,
            lm,
            head,
            threshold: 0.5,
            rng,
            audit_pending: true,
        }
    }

    /// Build `[CLS] a [SEP] b [SEP]` within the model's max length.
    pub fn pair_ids(&self, p: &EncodedPair) -> Vec<usize> {
        let budget = self.lm.max_len().saturating_sub(3);
        let la = p.ids_a.len();
        let lb = p.ids_b.len();
        let (ka, kb) = if la + lb <= budget {
            (la, lb)
        } else {
            let ka = (budget * la / (la + lb).max(1)).min(la);
            let kb = (budget - ka).min(lb);
            ((budget - kb).min(la), kb)
        };
        let mut ids = Vec::with_capacity(ka + kb + 3);
        ids.push(CLS);
        ids.extend_from_slice(&p.ids_a[..ka]);
        ids.push(SEP);
        ids.extend_from_slice(&p.ids_b[..kb]);
        ids.push(SEP);
        ids
    }

    /// Class logits for a batch; one tape shared across the batch.
    fn forward_logits(&mut self, tape: &mut impl TapeExec, pairs: &[&EncodedPair]) -> Var {
        let mut pooled = Vec::with_capacity(pairs.len());
        for p in pairs {
            let ids = self.pair_ids(p);
            let h = self
                .lm
                .encoder
                .forward(tape, &self.lm.store, &ids, &mut self.rng);
            pooled.push(tape.slice_rows(h, 0, 1)); // [CLS] row
        }
        let stacked = tape.concat_rows(&pooled);
        self.head.logits(tape, &self.lm.store, stacked)
    }

    fn forward_probs(&mut self, tape: &mut impl TapeExec, pairs: &[&EncodedPair]) -> Vec<f32> {
        let logits = self.forward_logits(tape, pairs);
        let probs = tape.softmax_rows(logits);
        let pm = tape.value(probs);
        (0..pm.rows()).map(|r| pm.get(r, 0)).collect()
    }

    fn batch_step(&mut self, batch: &[&Example], opt: &mut AdamW) -> f32 {
        self.lm.store.zero_grads();
        let mut tape = Tape::new();
        let pairs: Vec<&EncodedPair> = batch.iter().map(|e| &e.pair).collect();
        let logits = self.forward_logits(&mut tape, &pairs);
        let targets: Vec<usize> = batch.iter().map(|e| usize::from(!e.label)).collect();
        let loss = tape.cross_entropy(logits, &targets);
        if std::mem::take(&mut self.audit_pending) || em_nn::tape::sanitize_enabled() {
            em_check::audit_and_report(&tape, loss, &self.lm.store);
        }
        let value = tape.value(loss).item();
        if !value.is_finite() {
            // A poisoned batch must not propagate NaNs into the weights;
            // the epoch loop records it and skips the update.
            return value;
        }
        tape.backward(loss);
        tape.accumulate_param_grads(&mut self.lm.store);
        self.lm.store.clip_grad_norm(1.0);
        opt.step(&mut self.lm.store);
        value
    }
}

impl TunableMatcher for FineTuneModel {
    fn fresh(&self, seed: u64) -> Self {
        FineTuneModel::new(self.backbone.clone(), seed)
    }

    fn train(
        &mut self,
        train: &[Example],
        valid: &[Example],
        cfg: &TrainCfg,
        prune: Option<&PruneCfg>,
    ) -> TrainReport {
        run_training(
            self,
            &mut |m, b, o| m.batch_step(b, o),
            &mut |m| m.lm.store.clone(),
            &mut |m, s: ParamStore| m.lm.store = s,
            train,
            valid,
            cfg,
            prune,
        )
    }

    fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(32) {
            let refs: Vec<&EncodedPair> = chunk.iter().collect();
            let mut tape = NoGradTape::inference();
            out.extend(self.forward_probs(&mut tape, &refs));
        }
        out
    }

    fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
        em_lm::mc_dropout::run_passes(passes, |_| {
            let mut out = Vec::with_capacity(pairs.len());
            for chunk in pairs.chunks(32) {
                let refs: Vec<&EncodedPair> = chunk.iter().collect();
                let mut tape = NoGradTape::new(); // dropout active, zero tape nodes
                out.extend(self.forward_probs(&mut tape, &refs));
            }
            out
        })
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f32) {
        self.threshold = t;
    }

    fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(pairs.len());
        for p in pairs {
            let mut tape = NoGradTape::inference();
            let ids = self.pair_ids(p);
            let h = self
                .lm
                .encoder
                .forward(&mut tape, &self.lm.store, &ids, &mut self.rng);
            out.push(tape.value(h).row(0).to_vec());
        }
        out
    }

    fn export_state(&self) -> Option<crate::resume::MatcherState> {
        let mut params = Vec::new();
        em_nn::io::write_params(&self.lm.store, &mut params).ok()?;
        Some(crate::resume::MatcherState {
            params,
            threshold: self.threshold,
            rng: self.rng.state(),
        })
    }

    fn import_state(&mut self, state: &crate::resume::MatcherState) -> bool {
        if em_nn::io::read_params(&mut self.lm.store, &mut &state.params[..]).is_err() {
            return false;
        }
        self.threshold = state.threshold;
        self.rng = StdRng::from_state(state.rng);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_backbone, toy_examples};
    use crate::trainer::evaluate;

    #[test]
    fn pair_ids_frame_correctly() {
        let backbone = tiny_backbone();
        let model = FineTuneModel::new(backbone, 1);
        let p = EncodedPair {
            ids_a: vec![10, 11],
            ids_b: vec![12],
        };
        let ids = model.pair_ids(&p);
        assert_eq!(ids, vec![CLS, 10, 11, SEP, 12, SEP]);
    }

    #[test]
    fn pair_ids_respect_max_len() {
        let backbone = tiny_backbone();
        let model = FineTuneModel::new(backbone, 2);
        let long: Vec<usize> = (0..200).map(|i| 10 + i % 5).collect();
        let p = EncodedPair {
            ids_a: long.clone(),
            ids_b: long,
        };
        let ids = model.pair_ids(&p);
        assert!(ids.len() <= model.lm.max_len());
        assert_eq!(ids[0], CLS);
        assert_eq!(*ids.last().unwrap(), SEP);
    }

    #[test]
    fn finetune_learns_toy_task() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 40, 4);
        let mut model = FineTuneModel::new(backbone, 3);
        let cfg = TrainCfg {
            epochs: 10,
            ..Default::default()
        };
        model.train(&train, &valid, &cfg, None);
        let f1 = evaluate(&mut model, &valid).f1;
        assert!(f1 > 55.0, "fine-tuning failed to learn: F1 {f1}");
    }

    #[test]
    fn pruning_reduces_training_set() {
        let backbone = tiny_backbone();
        let (train, valid) = toy_examples(&backbone, 30, 5);
        let mut model = FineTuneModel::new(backbone, 4);
        let cfg = TrainCfg {
            epochs: 4,
            ..Default::default()
        };
        let prune = PruneCfg {
            every: 1,
            e_r: 0.2,
            passes: 2,
        };
        let report = model.train(&train, &valid, &cfg, Some(&prune));
        assert!(report.pruned > 0, "dynamic data pruning never fired");
    }
}
