//! Determinism regression: two pipeline runs with the same seed must
//! produce byte-identical JSONL metrics output once wall-clock and
//! process-global counters are normalized away.
//!
//! This guards the invariant the `em-lint` `clock`/`rng` rules exist to
//! protect: every quantity a run reports — losses, F1s, thresholds,
//! pseudo-label selections, prune decisions, span structure — is a pure
//! function of (dataset, config, seed). Timing fields and process-wide
//! id counters are the only sanctioned nondeterminism, so those are
//! zeroed/rebased before comparison; a mismatch anywhere else means a
//! hidden clock read, an unseeded RNG, or iteration-order leakage.

use std::collections::HashMap;

use em_data::synth::{build, BenchmarkId, Scale};
use em_obs::{Event, EventKind};
use promptem::pipeline::{run, PromptEmConfig};
use promptem::selftrain::LstCfg;
use promptem::trainer::TrainCfg;

/// A tiny budget that still exercises pretrain + teacher/student LST.
fn quick_cfg() -> PromptEmConfig {
    PromptEmConfig {
        lst: LstCfg {
            teacher: TrainCfg {
                epochs: 1,
                ..Default::default()
            },
            student: TrainCfg {
                epochs: 1,
                ..Default::default()
            },
            ..LstCfg::quick()
        },
        pretrain: em_lm::PretrainCfg {
            epochs: 1,
            max_steps: 20,
            ..Default::default()
        },
        corpus: em_data::corpus::CorpusCfg {
            max_record_sentences: 60,
            relation_statements: 30,
            ..Default::default()
        },
        grid_template: false,
        ..Default::default()
    }
}

/// Render captured events as canonical JSONL: zero every timing/heap
/// field, rebase `seq`, and remap process-global span ids to dense
/// first-appearance order.
fn canonical_jsonl(events: &[Event]) -> String {
    let mut span_ids: HashMap<u64, u64> = HashMap::new();
    let dense = |raw: u64, map: &mut HashMap<u64, u64>| -> u64 {
        let next = map.len() as u64 + 1;
        *map.entry(raw).or_insert(next)
    };
    let mut out = String::new();
    for (i, event) in events.iter().enumerate() {
        let mut e = event.clone();
        e.seq = i as u64 + 1;
        e.t_us = 0;
        e.span = e.span.map(|s| dense(s, &mut span_ids));
        e.kind = match e.kind {
            EventKind::SpanOpen {
                id,
                parent,
                name,
                detail,
            } => EventKind::SpanOpen {
                id: dense(id, &mut span_ids),
                parent: parent.map(|p| dense(p, &mut span_ids)),
                name,
                detail,
            },
            EventKind::SpanClose { id, name, .. } => EventKind::SpanClose {
                id: dense(id, &mut span_ids),
                name,
                wall_us: 0,
                heap_delta: 0,
                heap_peak: 0,
            },
            EventKind::EpochSummary {
                epoch,
                train_loss,
                valid_f1,
                threshold,
                examples,
                batches,
                ..
            } => EventKind::EpochSummary {
                epoch,
                train_loss,
                valid_f1,
                threshold,
                examples,
                batches,
                wall_us: 0,
            },
            other => other,
        };
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

#[test]
fn same_seed_runs_emit_identical_metrics_jsonl() {
    let ds = build(BenchmarkId::RelHeter, Scale::Quick, 17);
    let cfg = quick_cfg();
    let one_run = || {
        em_obs::capture(|| {
            em_obs::set_run_seed(17);
            run(&ds, &cfg)
        })
    };
    let (result_a, events_a) = one_run();
    let (result_b, events_b) = one_run();

    assert_eq!(
        result_a.scores.f1, result_b.scores.f1,
        "test F1 differs between identical runs"
    );
    assert_eq!(
        result_a.test_predictions, result_b.test_predictions,
        "predictions differ between identical runs"
    );

    let (jsonl_a, jsonl_b) = (canonical_jsonl(&events_a), canonical_jsonl(&events_b));
    assert!(!jsonl_a.is_empty(), "runs emitted no events");
    if jsonl_a != jsonl_b {
        // Byte-compare already failed; find the first divergent line so
        // the failure names the event instead of dumping two blobs.
        for (i, (a, b)) in jsonl_a.lines().zip(jsonl_b.lines()).enumerate() {
            assert_eq!(a, b, "runs diverge at event {}", i + 1);
        }
        panic!(
            "runs emitted different event counts: {} vs {}",
            jsonl_a.lines().count(),
            jsonl_b.lines().count()
        );
    }
}
