//! Property-based tests of the PromptEM algorithm components: Eq. 2 / Eq. 3
//! top-k selection invariants, MC-EL2N bounds, threshold calibration.

use promptem::encode::{EncodedPair, Example};
use promptem::pruning::prune_lowest;
use promptem::pseudo::{pseudo_label_quality, PseudoLabel};
use promptem::trainer::calibrate_threshold;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prune_lowest_drops_exactly_the_floor_fraction(
        scores in proptest::collection::vec(0.0f32..2.0, 1..60),
        e_r in 0.0f64..0.9,
    ) {
        let n = scores.len();
        let examples: Vec<Example> = (0..n)
            .map(|i| Example {
                pair: EncodedPair { ids_a: vec![i], ids_b: vec![i] },
                label: i % 2 == 0,
            })
            .collect();
        let (kept, dropped) = prune_lowest(examples, &scores, e_r);
        prop_assert_eq!(dropped, ((n as f64) * e_r).floor() as usize);
        prop_assert_eq!(kept.len() + dropped, n);
        // Every kept example's score is >= every dropped score... verify via
        // threshold: max dropped <= min kept (up to ties).
        if dropped > 0 && !kept.is_empty() {
            let kept_ids: std::collections::HashSet<usize> =
                kept.iter().map(|e| e.pair.ids_a[0]).collect();
            let min_kept = kept
                .iter()
                .map(|e| scores[e.pair.ids_a[0]])
                .fold(f32::INFINITY, f32::min);
            let max_dropped = (0..n)
                .filter(|i| !kept_ids.contains(i))
                .map(|i| scores[i])
                .fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(max_dropped <= min_kept + 1e-6);
        }
    }

    #[test]
    fn calibrated_threshold_is_optimal_among_candidates(
        probs in proptest::collection::vec(0.0f32..1.0, 2..40),
        gold_bits in proptest::collection::vec(any::<bool>(), 2..40),
    ) {
        let n = probs.len().min(gold_bits.len());
        let probs = &probs[..n];
        let gold = &gold_bits[..n];
        let t = calibrate_threshold(probs, gold);
        let f1_at = |thr: f32| {
            let pred: Vec<bool> = probs.iter().map(|&p| p > thr).collect();
            em_data::Confusion::from_pairs(&pred, gold).f1()
        };
        let best = f1_at(t);
        // No grid threshold beats the calibrated one.
        for k in 0..=20 {
            let thr = k as f32 / 20.0;
            prop_assert!(f1_at(thr) <= best + 1e-9, "grid {thr} beats calibrated {t}");
        }
    }

    #[test]
    fn pseudo_quality_bounds(
        gold_bits in proptest::collection::vec(any::<bool>(), 1..40),
        labels in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let n = gold_bits.len().min(labels.len());
        let selected: Vec<PseudoLabel> = (0..n)
            .map(|i| PseudoLabel { index: i, label: labels[i] })
            .collect();
        let (tpr, tnr) = pseudo_label_quality(&selected, &gold_bits[..n]);
        prop_assert!((0.0..=1.0).contains(&tpr));
        prop_assert!((0.0..=1.0).contains(&tnr));
    }

    #[test]
    fn perfect_pseudo_labels_have_perfect_quality(
        gold_bits in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let selected: Vec<PseudoLabel> = gold_bits
            .iter()
            .enumerate()
            .map(|(i, &g)| PseudoLabel { index: i, label: g })
            .collect();
        let (tpr, tnr) = pseudo_label_quality(&selected, &gold_bits);
        prop_assert_eq!(tpr, 1.0);
        prop_assert_eq!(tnr, 1.0);
    }
}
