//! Integration test: a Scale::Quick LST run must emit the expected span
//! tree and telemetry events — pretrain steps, teacher/student epochs,
//! pseudo-label selection and pruning — in pipeline order.

use em_data::synth::{build, BenchmarkId, Scale};
use em_obs::{Event, EventKind};
use promptem::pipeline::{run, PromptEmConfig};
use promptem::pseudo::PseudoCfg;
use promptem::selftrain::LstCfg;
use promptem::trainer::{PruneCfg, TrainCfg};

/// A tiny budget that still walks the full LST path: teacher, pseudo-label
/// selection, student with a mid-training pruning event.
fn traced_cfg() -> PromptEmConfig {
    PromptEmConfig {
        lst: LstCfg {
            teacher: TrainCfg {
                epochs: 2,
                ..Default::default()
            },
            // Three epochs with pruning every 2 fires exactly one prune
            // event (epoch 2 of 3); batch_size 4 keeps the working set
            // above the prune-eligibility floor.
            student: TrainCfg {
                epochs: 3,
                batch_size: 4,
                ..Default::default()
            },
            pseudo: PseudoCfg {
                passes: 2,
                ..Default::default()
            },
            prune: Some(PruneCfg {
                every: 2,
                e_r: 0.1,
                passes: 2,
            }),
            ..LstCfg::quick()
        },
        pretrain: em_lm::PretrainCfg {
            epochs: 1,
            max_steps: 30,
            ..Default::default()
        },
        corpus: em_data::corpus::CorpusCfg {
            max_record_sentences: 100,
            relation_statements: 50,
            ..Default::default()
        },
        grid_template: false,
        ..Default::default()
    }
}

fn open_id(events: &[Event], name: &str) -> u64 {
    events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::SpanOpen { id, name: n, .. } if n == name => Some(*id),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no span_open for '{name}'"))
}

fn open_seq(events: &[Event], name: &str) -> u64 {
    let id = open_id(events, name);
    events
        .iter()
        .find(|e| matches!(&e.kind, EventKind::SpanOpen { id: i, .. } if *i == id))
        .unwrap()
        .seq
}

#[test]
fn quick_lst_run_emits_expected_span_tree() {
    let ds = build(BenchmarkId::RelHeter, Scale::Quick, 41);
    let ((), events) = em_obs::capture(|| {
        em_obs::set_run_seed(41);
        let result = run(&ds, &traced_cfg());
        assert!(result.scores.f1.is_finite());
    });
    assert!(!events.is_empty(), "telemetry produced no events");

    // Sequence numbers strictly increase in emission order.
    for pair in events.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "seq not monotonic: {} then {}",
            pair[0].seq,
            pair[1].seq
        );
    }
    // Every event carries the run seed set before the pipeline ran.
    assert!(
        events.iter().all(|e| e.seed == 41),
        "run seed missing from events"
    );

    // Every span that opened also closed, with matching names.
    let opens: Vec<(u64, String)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SpanOpen { id, name, .. } => Some((*id, name.clone())),
            _ => None,
        })
        .collect();
    for (id, name) in &opens {
        assert!(
            events.iter().any(|e| matches!(
                &e.kind,
                EventKind::SpanClose { id: i, name: n, .. } if i == id && n == name
            )),
            "span {name}#{id} never closed"
        );
    }

    // Pipeline phases appear in order: pretrain → encode → tune → lst →
    // teacher → pseudo_select → student.
    let order: Vec<u64> = [
        "pretrain",
        "encode",
        "tune",
        "lst",
        "teacher",
        "pseudo_select",
        "student",
    ]
    .iter()
    .map(|n| open_seq(&events, n))
    .collect();
    for pair in order.windows(2) {
        assert!(pair[0] < pair[1], "pipeline spans out of order: {order:?}");
    }

    // Span nesting: lst under tune, teacher/student under their iteration,
    // and the three selection stages under pseudo_select.
    let tune = open_id(&events, "tune");
    let lst = open_id(&events, "lst");
    let iter = open_id(&events, "lst_iter");
    let select_span = open_id(&events, "pseudo_select");
    for (child, parent) in [
        ("lst", tune),
        ("lst_iter", lst),
        ("teacher", iter),
        ("student", iter),
        ("pseudo_score", select_span),
        ("pseudo_uncertainty", select_span),
        ("pseudo_rank", select_span),
    ] {
        let child_id = open_id(&events, child);
        let got = events.iter().find_map(|e| match &e.kind {
            EventKind::SpanOpen { id, parent, .. } if *id == child_id => Some(*parent),
            _ => None,
        });
        assert_eq!(
            got,
            Some(Some(parent)),
            "span '{child}' has the wrong parent"
        );
    }

    // Pretraining stepped at least once, tagged with the pretrain span.
    let pretrain = open_id(&events, "pretrain");
    let steps: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PretrainStep { .. }))
        .collect();
    assert!(!steps.is_empty(), "no pretrain_step events");
    assert!(
        steps.iter().all(|e| e.span == Some(pretrain)),
        "pretrain steps outside their span"
    );

    // Teacher and student epochs: counts match the configured budgets, and
    // each carries a finite loss plus validation F1/threshold.
    let teacher = open_id(&events, "teacher");
    let student = open_id(&events, "student");
    let epochs_in = |span: u64| -> Vec<&Event> {
        events
            .iter()
            .filter(|e| e.span == Some(span) && matches!(e.kind, EventKind::EpochSummary { .. }))
            .collect()
    };
    assert_eq!(epochs_in(teacher).len(), 2, "teacher epoch events");
    let student_epochs = epochs_in(student);
    assert_eq!(student_epochs.len(), 3, "student epoch events");
    for e in &student_epochs {
        match &e.kind {
            EventKind::EpochSummary {
                train_loss,
                valid_f1,
                threshold,
                examples,
                batches,
                ..
            } => {
                assert!(train_loss.is_finite());
                assert!(valid_f1.is_some(), "student epoch missing valid F1");
                assert!(threshold.is_some(), "student epoch missing threshold");
                assert!(*examples > 0, "student epoch missing example count");
                assert!(*batches > 0, "student epoch missing batch count");
            }
            _ => unreachable!(),
        }
    }
    // MLM pretraining reports its epochs too (no validation F1 there).
    let pretrain_epochs = epochs_in(pretrain);
    assert!(!pretrain_epochs.is_empty(), "no pretrain epoch summaries");

    // Pseudo-label selection happened inside the LST iteration, with audit
    // quality attached (the pipeline passes gold labels).
    let select = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::PseudoSelect { .. }))
        .expect("no pseudo_select event");
    assert_eq!(select.span, Some(iter));
    match select.kind {
        EventKind::PseudoSelect { count, tpr, tnr } => {
            assert!(count > 0, "no pseudo-labels selected");
            assert!(tpr.is_some() && tnr.is_some(), "audit quality missing");
        }
        _ => unreachable!(),
    }

    // Exactly one prune event (student: 3 epochs, prune every 2), inside
    // the student span, dropping at least one example.
    let prunes: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Prune { .. }))
        .collect();
    assert_eq!(prunes.len(), 1, "expected one prune event");
    assert_eq!(prunes[0].span, Some(student));
    assert!(matches!(prunes[0].kind, EventKind::Prune { dropped, passes: 2 } if dropped > 0));

    // MC-Dropout uncertainty histograms: one from pseudo-label selection
    // (inside its span) and one from MC-EL2N scoring before the prune.
    let unc_sources: Vec<(&str, Option<u64>)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::UncHist { source, counts, .. } => {
                assert!(counts.iter().sum::<u64>() > 0, "empty uncertainty hist");
                Some((source.as_str(), e.span))
            }
            _ => None,
        })
        .collect();
    let unc_span = open_id(&events, "pseudo_uncertainty");
    assert!(
        unc_sources.contains(&("pseudo_uncertainty", Some(unc_span))),
        "no pseudo_uncertainty histogram in the pseudo_uncertainty span: {unc_sources:?}"
    );
    assert!(
        unc_sources.contains(&("mc_el2n", Some(student))),
        "no mc_el2n histogram in the student span: {unc_sources:?}"
    );
}
