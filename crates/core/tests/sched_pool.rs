//! Model-check the `em-pool` work-stealing claim protocol with `em-sched`.
//!
//! The pool's correctness claim is conservation: **every task is claimed by
//! exactly one worker**, no matter how owner scans and thieves interleave.
//! The production `RelaxedClaim` gets that from a single atomic swap; these
//! tests re-run the identical `ShardQueue` code over scheduler-instrumented
//! atomics so the claim is checked under *adversarial* interleavings:
//!
//! * the swap protocol must conserve tasks on every explored seed, and
//! * a deliberately torn claim (load-then-store — the natural "check the
//!   flag, then set it" refactor bug) must be *caught* within the seed
//!   budget, proving the checker can see double-claims at all.
//!
//! Seed budget: 64 by default, overridable via `PROMPTEM_SCHED_SEEDS`
//! (CI pins it explicitly).

use std::sync::Arc;

use em_pool::{ClaimWord, ShardQueue};
use em_sched::{explore, Config, FailureKind, Report};

/// Scheduler-instrumented claim: the production single-swap protocol with
/// every access a scheduling point.
struct SchedClaim(em_sched::sync::AtomicU64);

impl ClaimWord for SchedClaim {
    fn new_unclaimed() -> Self {
        SchedClaim(em_sched::sync::AtomicU64::new(0))
    }

    fn try_claim(&self) -> bool {
        self.0.swap(1) == 0
    }
}

/// The seeded bug: claiming via separate load and store, so two workers
/// racing on the same task can both observe it unclaimed and both run it.
struct TornClaim(em_sched::sync::AtomicU64);

impl ClaimWord for TornClaim {
    fn new_unclaimed() -> Self {
        TornClaim(em_sched::sync::AtomicU64::new(0))
    }

    fn try_claim(&self) -> bool {
        let cur = self.0.load();
        self.0.store(1);
        cur == 0
    }
}

fn seed_budget() -> u64 {
    std::env::var("PROMPTEM_SCHED_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drive the queue the way `run_sharded` does: two workers drain their own
/// shards and steal from each other, every claim bumping a per-task run
/// counter; after both finish, each task must have run exactly once.
fn check_queue<W>(seeds: u64) -> Report
where
    W: ClaimWord + Send + 'static,
{
    explore(
        Config {
            seeds,
            ..Config::default()
        },
        || {
            const TASKS: usize = 6;
            const WORKERS: usize = 2;
            let queue: Arc<ShardQueue<W>> = Arc::new(ShardQueue::new(TASKS, WORKERS));
            let runs: Arc<Vec<em_sched::sync::AtomicU64>> = Arc::new(
                (0..TASKS)
                    .map(|_| em_sched::sync::AtomicU64::new(0))
                    .collect(),
            );
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let queue = Arc::clone(&queue);
                    let runs = Arc::clone(&runs);
                    em_sched::thread::spawn(move || {
                        while let Some(i) = queue.next_for(w) {
                            runs[i].fetch_add(1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            for (i, c) in runs.iter().enumerate() {
                assert_eq!(
                    c.load(),
                    1,
                    "task {i}: claimed by a wrong number of workers"
                );
            }
        },
    )
}

#[test]
fn swap_claim_conserves_tasks_across_seeds() {
    check_queue::<SchedClaim>(seed_budget()).assert_ok();
}

#[test]
fn torn_claim_is_caught_within_bounded_seeds() {
    let budget = seed_budget();
    let report = check_queue::<TornClaim>(budget);
    let failure = report
        .failure
        .unwrap_or_else(|| panic!("checker missed the double-claim within {budget} seeds"));
    assert!(
        matches!(&failure.kind, FailureKind::Panic { message, .. }
            if message.contains("wrong number of workers")),
        "unexpected failure: {failure}"
    );
    assert!(
        report.seeds_run <= budget,
        "exploration ran past its budget"
    );
    // The failing seed range is a deterministic reproducer.
    let again = check_queue::<TornClaim>(1_u64.max(failure.seed + 1));
    assert!(
        again.failure.is_some(),
        "replaying the seed range no longer reproduces the bug"
    );
}
