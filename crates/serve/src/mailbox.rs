//! A bounded MPMC mailbox: `Mutex<VecDeque>` + `Condvar`, nothing
//! fancier. Admission uses [`Mailbox::try_send`] (which sheds load
//! instead of blocking); workers drain up to a micro-batch of items per
//! wakeup with [`Mailbox::recv_batch`]; the supervisor re-enqueues
//! crash-replayed items at the *front* with [`Mailbox::push_front`] so a
//! replay is never shed and never queues behind younger requests.

use crate::lock;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Why a [`Mailbox::try_send`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The queue is at capacity; the item should be shed with a typed
    /// rejection carrying the current depth.
    Full {
        /// Queue depth at the time of the refusal.
        depth: usize,
    },
    /// The mailbox was closed (server draining).
    Closed,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    cap: usize,
}

/// A cloneable handle to one bounded queue.
pub struct Mailbox<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Mailbox<T> {
    /// A mailbox holding at most `cap` items (minimum 1).
    pub fn new(cap: usize) -> Self {
        Mailbox {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                cv: Condvar::new(),
                cap: cap.max(1),
            }),
        }
    }

    /// Enqueue without blocking; at capacity or after close the item is
    /// handed back with the reason so the caller can shed it.
    pub fn try_send(&self, item: T) -> Result<(), (T, SendError)> {
        let mut st = lock(&self.inner.state);
        if st.closed {
            return Err((item, SendError::Closed));
        }
        if st.queue.len() >= self.inner.cap {
            let depth = st.queue.len();
            return Err((item, SendError::Full { depth }));
        }
        st.queue.push_back(item);
        drop(st);
        self.inner.cv.notify_one();
        Ok(())
    }

    /// Enqueue at the front, ignoring the capacity bound. Reserved for
    /// crash replays: a request that already survived a worker loss must
    /// not be shed by the same backpressure that protects admission, and
    /// it keeps its place ahead of younger requests.
    pub fn push_front(&self, item: T) {
        let mut st = lock(&self.inner.state);
        st.queue.push_front(item);
        drop(st);
        self.inner.cv.notify_one();
    }

    /// Block until at least one item (or close), then drain up to `max`
    /// items in FIFO order — the micro-batch. `None` means closed and
    /// fully drained: the worker should exit.
    pub fn recv_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut st = lock(&self.inner.state);
        while st.queue.is_empty() {
            if st.closed {
                return None;
            }
            st = self
                .inner
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let take = st.queue.len().min(max.max(1));
        let batch: Vec<T> = st.queue.drain(..take).collect();
        if !st.queue.is_empty() {
            // More than one batch queued: wake a sibling worker too.
            self.inner.cv.notify_one();
        }
        Some(batch)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        lock(&self.inner.state).queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the mailbox: senders get [`SendError::Closed`], workers
    /// drain what remains and then exit.
    pub fn close(&self) {
        lock(&self.inner.state).closed = true;
        self.inner.cv.notify_all();
    }

    /// Whether [`Mailbox::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.inner.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_send_and_batched_recv() {
        let mb: Mailbox<u32> = Mailbox::new(2);
        assert_eq!(mb.try_send(1), Ok(()));
        assert_eq!(mb.try_send(2), Ok(()));
        assert_eq!(mb.try_send(3), Err((3, SendError::Full { depth: 2 })));
        assert_eq!(mb.recv_batch(8), Some(vec![1, 2]));
        assert!(mb.is_empty());
    }

    #[test]
    fn push_front_bypasses_the_cap_and_orders_first() {
        let mb: Mailbox<u32> = Mailbox::new(1);
        assert_eq!(mb.try_send(1), Ok(()));
        mb.push_front(0);
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.recv_batch(8), Some(vec![0, 1]));
    }

    #[test]
    fn close_drains_then_ends() {
        let mb: Mailbox<u32> = Mailbox::new(4);
        assert_eq!(mb.try_send(1), Ok(()));
        mb.close();
        assert_eq!(mb.try_send(2), Err((2, SendError::Closed)));
        assert_eq!(mb.recv_batch(8), Some(vec![1]));
        assert_eq!(mb.recv_batch(8), None);
    }

    #[test]
    fn recv_blocks_until_send() {
        let mb: Mailbox<u32> = Mailbox::new(4);
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || mb2.recv_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(mb.try_send(7), Ok(()));
        assert_eq!(t.join().expect("recv thread"), Some(vec![7]));
    }
}
