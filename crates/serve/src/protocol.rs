//! The wire protocol: one flat JSON object per line, both directions.
//!
//! The schema is deliberately flat (scalars plus number arrays) so both
//! sides reuse `em_obs::event::parse_flat_object` — the exact parser the
//! trace tooling uses — instead of growing a second JSON dialect.
//!
//! Requests:
//!
//! ```json
//! {"op":"match","id":"r1","left":[0,2],"right":[1,3],"deadline_ms":500}
//! {"op":"ping","id":"p1"}
//! {"op":"stats","id":"s1"}
//! {"op":"shutdown","id":"q1"}
//! ```
//!
//! Responses carry the request `id` plus an `"ok"` flag; failures name a
//! typed `"error"` (`"rejected"`, `"deadline_exceeded"`, `"duplicate_id"`,
//! `"failed"`, `"bad_request"`). Parsing is total: torn or invalid lines
//! return `Err`, never panic.

use em_obs::event::{parse_flat_object, JsonVal};

/// A client-to-server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score `(left, right)` record-index pairs against the served model.
    Match {
        /// Caller-chosen request id, echoed on the response. Ids must be
        /// unique per connection; reuse is answered with `duplicate_id`.
        id: String,
        /// Record index pairs `(left table, right table)`.
        pairs: Vec<(u32, u32)>,
        /// Optional per-request deadline in milliseconds from admission.
        deadline_ms: Option<u64>,
    },
    /// Liveness probe.
    Ping {
        /// Request id, echoed back.
        id: String,
    },
    /// Counter snapshot.
    Stats {
        /// Request id, echoed back.
        id: String,
    },
    /// Graceful drain: stop admitting, finish in-flight work, then exit.
    Shutdown {
        /// Request id, echoed back on the final `Drained` response.
        id: String,
    },
}

/// Server counter snapshot carried by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests answered with a match result.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Requests answered `failed` or `deadline_exceeded`.
    pub failed: u64,
    /// Worker restarts performed by the supervisor.
    pub restarts: u64,
}

/// A server-to-client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Scores for every pair of the request, in request order.
    Matched {
        /// The request id.
        id: String,
        /// Match probability per pair.
        proba: Vec<f32>,
        /// Thresholded decision per pair.
        decision: Vec<bool>,
    },
    /// Shed by admission control; safe to retry after the hinted delay.
    Rejected {
        /// The request id.
        id: String,
        /// Why admission refused it (`queue_full`, `overloaded`,
        /// `draining`, or an injected fault).
        reason: String,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request's deadline passed before a worker could serve it.
    DeadlineExceeded {
        /// The request id.
        id: String,
    },
    /// A request id was reused on the same connection.
    Duplicate {
        /// The offending request id.
        id: String,
    },
    /// Terminal failure: the scorer errored, or the request was lost to
    /// a crashed worker twice (replays happen at most once).
    Failed {
        /// The request id.
        id: String,
        /// What went wrong.
        reason: String,
    },
    /// The request line did not parse or failed validation.
    BadRequest {
        /// The request id when one could be recovered, else empty.
        id: String,
        /// The parse or validation error.
        reason: String,
    },
    /// Reply to [`Request::Ping`].
    Pong {
        /// The request id.
        id: String,
    },
    /// Reply to [`Request::Stats`].
    Stats {
        /// The request id.
        id: String,
        /// Counter snapshot.
        body: StatsBody,
    },
    /// Final reply to [`Request::Shutdown`], sent once the mailbox and
    /// all in-flight work have drained.
    Drained {
        /// The request id.
        id: String,
        /// Total requests completed over the server's lifetime.
        completed: u64,
    },
}

/// Append `s` as a JSON string literal (the escape set `parse_string`
/// in em-obs understands: `\" \\ \n \r \t \uXXXX`).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64_arr(out: &mut String, key: &str, vals: impl Iterator<Item = u64>) {
    out.push(',');
    push_json_str(out, key);
    out.push_str(":[");
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Typed field access over a parsed flat object.
struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&JsonVal> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(JsonVal::Str(s)) => Ok(s.clone()),
            other => Err(format!("field '{key}' must be a string, got {other:?}")),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(JsonVal::Num(n)) => Ok(*n as u64),
            other => Err(format!("field '{key}' must be a number, got {other:?}")),
        }
    }

    fn opt_u64_field(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            Some(JsonVal::Num(n)) => Ok(Some(*n as u64)),
            Some(JsonVal::Null) | None => Ok(None),
            other => Err(format!(
                "field '{key}' must be a number or null, got {other:?}"
            )),
        }
    }

    fn arr_field(&self, key: &str) -> Result<&[f64], String> {
        match self.get(key) {
            Some(JsonVal::Arr(vs)) => Ok(vs),
            other => Err(format!("field '{key}' must be an array, got {other:?}")),
        }
    }
}

/// Best-effort id recovery from a line that may not fully parse, so a
/// `bad_request` reply can still name the request it answers.
pub fn line_id(line: &str) -> String {
    parse_flat_object(line)
        .ok()
        .and_then(|obj| {
            obj.into_iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("id", JsonVal::Str(s)) => Some(s),
                _ => None,
            })
        })
        .unwrap_or_default()
}

impl Request {
    /// Encode as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::from("{\"op\":");
        let (op, id) = match self {
            Request::Match { id, .. } => ("match", id),
            Request::Ping { id } => ("ping", id),
            Request::Stats { id } => ("stats", id),
            Request::Shutdown { id } => ("shutdown", id),
        };
        push_json_str(&mut out, op);
        out.push_str(",\"id\":");
        push_json_str(&mut out, id);
        if let Request::Match {
            pairs, deadline_ms, ..
        } = self
        {
            push_u64_arr(&mut out, "left", pairs.iter().map(|p| u64::from(p.0)));
            push_u64_arr(&mut out, "right", pairs.iter().map(|p| u64::from(p.1)));
            if let Some(d) = deadline_ms {
                out.push_str(&format!(",\"deadline_ms\":{d}"));
            }
        }
        out.push('}');
        out
    }

    /// Parse one request line. Total: every malformed input is an `Err`.
    pub fn parse(line: &str) -> Result<Request, String> {
        let f = Fields(parse_flat_object(line)?);
        let op = f.str_field("op")?;
        let id = f.str_field("id")?;
        if id.is_empty() {
            return Err("empty request id".into());
        }
        match op.as_str() {
            "match" => {
                let left = f.arr_field("left")?;
                let right = f.arr_field("right")?;
                if left.len() != right.len() {
                    return Err(format!(
                        "left/right length mismatch: {} vs {}",
                        left.len(),
                        right.len()
                    ));
                }
                if left.is_empty() {
                    return Err("empty pair list".into());
                }
                let to_u32 = |v: f64, side: &str| -> Result<u32, String> {
                    if v < 0.0 || v > f64::from(u32::MAX) || v.fract() != 0.0 {
                        return Err(format!("bad {side} record index {v}"));
                    }
                    Ok(v as u32)
                };
                let pairs = left
                    .iter()
                    .zip(right)
                    .map(|(&l, &r)| Ok((to_u32(l, "left")?, to_u32(r, "right")?)))
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Request::Match {
                    id,
                    pairs,
                    deadline_ms: f.opt_u64_field("deadline_ms")?,
                })
            }
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

impl Response {
    /// Encode as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::from("{\"id\":");
        match self {
            Response::Matched {
                id,
                proba,
                decision,
            } => {
                push_json_str(&mut out, id);
                out.push_str(",\"ok\":true,\"proba\":[");
                for (i, p) in proba.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    // f32 Display is the shortest decimal that round-trips
                    // to the same f32, so parse-back is bit-exact.
                    out.push_str(&format!("{p}"));
                }
                out.push(']');
                push_u64_arr(&mut out, "match", decision.iter().map(|&d| u64::from(d)));
            }
            Response::Rejected {
                id,
                reason,
                retry_after_ms,
            } => {
                push_json_str(&mut out, id);
                out.push_str(",\"ok\":false,\"error\":\"rejected\",\"reason\":");
                push_json_str(&mut out, reason);
                out.push_str(&format!(",\"retry_after_ms\":{retry_after_ms}"));
            }
            Response::DeadlineExceeded { id } => {
                push_json_str(&mut out, id);
                out.push_str(",\"ok\":false,\"error\":\"deadline_exceeded\"");
            }
            Response::Duplicate { id } => {
                push_json_str(&mut out, id);
                out.push_str(",\"ok\":false,\"error\":\"duplicate_id\"");
            }
            Response::Failed { id, reason } => {
                push_json_str(&mut out, id);
                out.push_str(",\"ok\":false,\"error\":\"failed\",\"reason\":");
                push_json_str(&mut out, reason);
            }
            Response::BadRequest { id, reason } => {
                push_json_str(&mut out, id);
                out.push_str(",\"ok\":false,\"error\":\"bad_request\",\"reason\":");
                push_json_str(&mut out, reason);
            }
            Response::Pong { id } => {
                push_json_str(&mut out, id);
                out.push_str(",\"ok\":true");
            }
            Response::Stats { id, body } => {
                push_json_str(&mut out, id);
                out.push_str(&format!(
                    ",\"ok\":true,\"admitted\":{},\"completed\":{},\"rejected\":{},\"failed\":{},\"restarts\":{}",
                    body.admitted, body.completed, body.rejected, body.failed, body.restarts
                ));
            }
            Response::Drained { id, completed } => {
                push_json_str(&mut out, id);
                out.push_str(&format!(",\"ok\":true,\"drained\":{completed}"));
            }
        }
        out.push('}');
        out
    }

    /// Parse one response line. Total: every malformed input is an `Err`.
    pub fn parse(line: &str) -> Result<Response, String> {
        let f = Fields(parse_flat_object(line)?);
        let id = f.str_field("id")?;
        let ok = match f.get("ok") {
            Some(JsonVal::Bool(b)) => *b,
            other => return Err(format!("field 'ok' must be a bool, got {other:?}")),
        };
        if ok {
            if f.get("proba").is_some() {
                let proba: Vec<f32> = f.arr_field("proba")?.iter().map(|&v| v as f32).collect();
                let decision: Vec<bool> = f.arr_field("match")?.iter().map(|&v| v != 0.0).collect();
                if proba.len() != decision.len() {
                    return Err("proba/match length mismatch".into());
                }
                return Ok(Response::Matched {
                    id,
                    proba,
                    decision,
                });
            }
            if f.get("admitted").is_some() {
                return Ok(Response::Stats {
                    id,
                    body: StatsBody {
                        admitted: f.u64_field("admitted")?,
                        completed: f.u64_field("completed")?,
                        rejected: f.u64_field("rejected")?,
                        failed: f.u64_field("failed")?,
                        restarts: f.u64_field("restarts")?,
                    },
                });
            }
            if f.get("drained").is_some() {
                return Ok(Response::Drained {
                    id,
                    completed: f.u64_field("drained")?,
                });
            }
            return Ok(Response::Pong { id });
        }
        match f.str_field("error")?.as_str() {
            "rejected" => Ok(Response::Rejected {
                id,
                reason: f.str_field("reason")?,
                retry_after_ms: f.u64_field("retry_after_ms")?,
            }),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded { id }),
            "duplicate_id" => Ok(Response::Duplicate { id }),
            "failed" => Ok(Response::Failed {
                id,
                reason: f.str_field("reason")?,
            }),
            "bad_request" => Ok(Response::BadRequest {
                id,
                reason: f.str_field("reason")?,
            }),
            other => Err(format!("unknown error kind '{other}'")),
        }
    }

    /// The request id this response answers.
    pub fn id(&self) -> &str {
        match self {
            Response::Matched { id, .. }
            | Response::Rejected { id, .. }
            | Response::DeadlineExceeded { id }
            | Response::Duplicate { id }
            | Response::Failed { id, .. }
            | Response::BadRequest { id, .. }
            | Response::Pong { id }
            | Response::Stats { id, .. }
            | Response::Drained { id, .. } => id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Match {
                id: "r-1".into(),
                pairs: vec![(0, 1), (7, 3)],
                deadline_ms: Some(250),
            },
            Request::Match {
                id: "r \"quoted\"\n".into(),
                pairs: vec![(u32::MAX, 0)],
                deadline_ms: None,
            },
            Request::Ping { id: "p".into() },
            Request::Stats { id: "s".into() },
            Request::Shutdown { id: "q".into() },
        ];
        for r in reqs {
            let line = r.encode();
            assert_eq!(Request::parse(&line).as_ref(), Ok(&r), "{line}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Matched {
                id: "r-1".into(),
                proba: vec![0.25, 1.0, 1e-7],
                decision: vec![false, true, false],
            },
            Response::Rejected {
                id: "r-2".into(),
                reason: "queue_full".into(),
                retry_after_ms: 25,
            },
            Response::DeadlineExceeded { id: "r-3".into() },
            Response::Duplicate { id: "r-4".into() },
            Response::Failed {
                id: "r-5".into(),
                reason: "worker_lost".into(),
            },
            Response::BadRequest {
                id: String::new(),
                reason: "unknown op 'x'".into(),
            },
            Response::Pong { id: "p".into() },
            Response::Stats {
                id: "s".into(),
                body: StatsBody {
                    admitted: 10,
                    completed: 7,
                    rejected: 2,
                    failed: 1,
                    restarts: 3,
                },
            },
            Response::Drained {
                id: "q".into(),
                completed: 7,
            },
        ];
        for r in resps {
            let line = r.encode();
            assert_eq!(Response::parse(&line).as_ref(), Ok(&r), "{line}");
        }
    }

    #[test]
    fn invalid_lines_are_typed_errors() {
        for bad in [
            "",
            "{",
            "{}",
            "not json at all",
            "{\"op\":\"match\",\"id\":\"x\",\"left\":[1],\"right\":[1,2]}",
            "{\"op\":\"match\",\"id\":\"x\",\"left\":[],\"right\":[]}",
            "{\"op\":\"match\",\"id\":\"\",\"left\":[1],\"right\":[2]}",
            "{\"op\":\"nope\",\"id\":\"x\"}",
            "{\"op\":\"match\",\"id\":\"x\",\"left\":[1.5],\"right\":[2]}",
            "{\"op\":\"match\",\"id\":\"x\",\"left\":[-1],\"right\":[2]}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
        for bad in ["", "{}", "{\"id\":\"x\"}", "{\"id\":\"x\",\"ok\":false}"] {
            assert!(Response::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn line_id_recovers_when_possible() {
        assert_eq!(line_id("{\"op\":\"nope\",\"id\":\"x7\"}"), "x7");
        assert_eq!(line_id("garbage"), "");
    }
}
