//! # em-serve
//!
//! A thread-based matching service: per-model worker actors behind
//! bounded mailboxes, micro-batching concurrent match requests into one
//! forward pass, admission control that sheds load with typed
//! rejections, per-request deadlines, and a supervisor that restarts
//! panicked or wedged workers with bounded exponential backoff.
//!
//! The crate is model-agnostic: the embedding side plugs in through
//! [`MatchScorer`] (one trained matcher per worker) and a
//! [`ScorerFactory`] the supervisor uses to build identical replacement
//! workers after a crash. Because every scorer is deterministic and
//! row-independent (see `TunableMatcher::predict_proba`), a request's
//! decision does not depend on which worker served it or which requests
//! it was batched with — completed responses are bit-identical to an
//! offline run over the same pairs.
//!
//! Delivery contract: every admitted request gets exactly one terminal
//! response — a match result, `deadline_exceeded`, or `failed`. Requests
//! lost to a crashed worker are replayed **at most once**; a request
//! whose replay also dies is answered `failed`, never silently dropped.
//! Duplicate suppression is per-request (an atomic claimed by the first
//! responder), so a wedged worker racing its replacement cannot answer
//! twice.
//!
//! Wire format: line-delimited flat JSON over TCP — see [`protocol`].

#![warn(missing_docs)]

pub mod client;
pub mod mailbox;
pub mod protocol;
pub mod server;
pub mod supervisor;
pub mod worker;

pub use client::{drive_pairs, Client};
pub use mailbox::{Mailbox, SendError};
pub use protocol::{Request, Response, StatsBody};
pub use server::{DrainSummary, ServeCfg, ServeStats, Server};
pub use supervisor::SupervisorCfg;
pub use worker::{Job, MatchScorer, Outcome, ReplySink, ScorerFactory};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering the guard from a poisoned lock. Serve state
/// (reply sinks, in-flight stashes, the mailbox) must stay usable after
/// a worker panic: crash recovery belongs to the supervisor, not to lock
/// poisoning.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
