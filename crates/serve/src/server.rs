//! The TCP front end: a polling accept loop, one reader thread per
//! connection, admission control ahead of the shared mailbox, and the
//! graceful drain sequence.
//!
//! Admission sheds load in three typed ways, all carrying a
//! `retry_after_ms` hint: `draining` (shutdown in progress),
//! `overloaded` (too many admitted-but-unanswered requests), and
//! `queue_full` (mailbox at capacity). Admitted requests are never shed
//! — they end in exactly one terminal response.

use crate::lock;
use crate::mailbox::{Mailbox, SendError};
use crate::protocol::{line_id, Request, Response, StatsBody};
use crate::supervisor::{Supervisor, SupervisorCfg};
use crate::worker::{Job, ReplySink, ScorerFactory};
use em_resilience::failpoint::{self, Action};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Histogram fed once per answered request; `promptem report` derives
/// serving latency percentiles from its trace snapshot.
pub const REQUEST_SECS_METRIC: &str = "serve_request_secs";

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeCfg {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker actor count.
    pub workers: usize,
    /// Micro-batch size cap (requests coalesced per forward).
    pub batch_max: usize,
    /// Mailbox capacity; `try_send` beyond it sheds with `queue_full`.
    pub queue_cap: usize,
    /// Cap on admitted-but-unanswered requests; beyond it admission
    /// sheds with `overloaded`.
    pub inflight_cap: usize,
    /// Deadline applied to requests that carry none.
    pub default_deadline_ms: Option<u64>,
    /// Retry hint attached to every rejection.
    pub retry_after_ms: u64,
    /// Wedge threshold: no worker progress for this long while work is
    /// pending triggers a restart.
    pub wedge_ms: u64,
    /// Worker restart backoff base (doubles per consecutive restart).
    pub backoff_base_ms: u64,
    /// Worker restart backoff ceiling.
    pub backoff_max_ms: u64,
}

impl Default for ServeCfg {
    fn default() -> Self {
        ServeCfg {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            batch_max: 16,
            queue_cap: 64,
            inflight_cap: 256,
            default_deadline_ms: None,
            retry_after_ms: 25,
            wedge_ms: 2_000,
            backoff_base_ms: 10,
            backoff_max_ms: 500,
        }
    }
}

/// Lifetime counters, shared by admission, workers, and the supervisor.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests admitted past admission control.
    pub admitted: AtomicU64,
    /// Requests answered with a match result.
    pub completed: AtomicU64,
    /// Requests shed by admission control.
    pub rejected: AtomicU64,
    /// Requests answered `failed`.
    pub failed: AtomicU64,
    /// Requests answered `deadline_exceeded`.
    pub deadline_exceeded: AtomicU64,
    /// Lines that failed to parse or validate.
    pub bad_lines: AtomicU64,
    /// Request ids reused on one connection.
    pub duplicate_ids: AtomicU64,
    /// Suppressed second deliveries (superseded worker raced its
    /// replacement); the client saw exactly one of the two.
    pub duplicates: AtomicU64,
    /// Worker restarts performed by the supervisor.
    pub restarts: AtomicU64,
    /// Admitted requests not yet answered (the in-flight gauge).
    pub outstanding: AtomicU64,
}

impl ServeStats {
    /// Snapshot for the `stats` op and the final drain accounting.
    pub fn snapshot(&self) -> StatsBody {
        StatsBody {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed)
                + self.deadline_exceeded.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
        }
    }
}

/// What the drained server hands back to its caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Requests answered with a match result.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Requests answered `failed` or `deadline_exceeded`.
    pub failed: u64,
    /// Worker restarts over the server's lifetime.
    pub restarts: u64,
}

struct Flags {
    draining: AtomicBool,
    stop: AtomicBool,
}

/// A bound, not-yet-running server. `bind` first (so the caller can
/// learn the picked port), then `run` until drained.
pub struct Server {
    listener: TcpListener,
    cfg: Arc<ServeCfg>,
    mailbox: Mailbox<Job>,
    supervisor: Supervisor,
    stats: Arc<ServeStats>,
    flags: Arc<Flags>,
}

impl Server {
    /// Bind the listener and spawn the worker actors + supervisor.
    pub fn bind(cfg: ServeCfg, factory: ScorerFactory) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let mailbox: Mailbox<Job> = Mailbox::new(cfg.queue_cap);
        let stats = Arc::new(ServeStats::default());
        let supervisor = Supervisor::start(
            mailbox.clone(),
            factory,
            Arc::clone(&stats),
            SupervisorCfg {
                workers: cfg.workers,
                batch_max: cfg.batch_max,
                wedge_ms: cfg.wedge_ms,
                backoff_base_ms: cfg.backoff_base_ms,
                backoff_max_ms: cfg.backoff_max_ms,
            },
        );
        Ok(Server {
            listener,
            cfg: Arc::new(cfg),
            mailbox,
            supervisor,
            stats,
            flags: Arc::new(Flags {
                draining: AtomicBool::new(false),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (the real port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Lifetime counters (shared; live while the server runs).
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Serve until a `shutdown` request completes the graceful drain:
    /// accept loop + per-connection reader threads, then close the
    /// mailbox, join every worker and reader, emit the terminal `drain`
    /// event, and return the final accounting.
    pub fn run(self) -> std::io::Result<DrainSummary> {
        let _span = em_obs::span(em_obs::names::SPAN_SERVE);
        self.listener.set_nonblocking(true)?;
        let mut readers: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if self.flags.stop.load(Ordering::Relaxed) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    match failpoint::check("serve_accept") {
                        Some(Action::Panic) => panic!("failpoint serve_accept: injected panic"),
                        Some(Action::Delay) => std::thread::sleep(Duration::from_millis(50)),
                        Some(_) => {
                            // Injected accept fault: drop the connection.
                            drop(stream);
                            continue;
                        }
                        None => {}
                    }
                    let mailbox = self.mailbox.clone();
                    let stats = Arc::clone(&self.stats);
                    let flags = Arc::clone(&self.flags);
                    let cfg = Arc::clone(&self.cfg);
                    readers.push(std::thread::spawn(move || {
                        conn_loop(stream, mailbox, stats, flags, cfg);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain epilogue. Admission is already refusing (draining flag)
        // and every admitted request is answered (outstanding hit 0
        // before the stop flag was set), so closing the mailbox lets the
        // workers run dry and exit.
        self.mailbox.close();
        self.supervisor.stop();
        for h in readers {
            let _ = h.join();
        }
        let s = self.stats.snapshot();
        em_obs::drain(s.completed, s.rejected, s.failed, s.restarts);
        em_obs::flush_metrics();
        Ok(DrainSummary {
            completed: s.completed,
            rejected: s.rejected,
            failed: s.failed,
            restarts: s.restarts,
        })
    }
}

fn write_response(writer: &Arc<Mutex<TcpStream>>, resp: &Response) {
    let mut s = lock(writer);
    // A vanished client is its own problem; the server carries on.
    let _ = s.write_all(resp.encode().as_bytes());
    let _ = s.write_all(b"\n");
    let _ = s.flush();
}

/// One connection's reader: line in, response (or admission) out. The
/// read timeout doubles as the stop-flag poll so no reader outlives the
/// drain by more than ~100ms.
fn conn_loop(
    stream: TcpStream,
    mailbox: Mailbox<Job>,
    stats: Arc<ServeStats>,
    flags: Arc<Flags>,
    cfg: Arc<ServeCfg>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut seen_ids: HashSet<String> = HashSet::new();
    let mut line = String::new();
    loop {
        if flags.stop.load(Ordering::Relaxed) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF (any partial tail is torn; drop it)
            Ok(_) => {
                handle_line(
                    line.trim(),
                    &mut seen_ids,
                    &writer,
                    &mailbox,
                    &stats,
                    &flags,
                    &cfg,
                );
                line.clear();
            }
            // Timeout: bytes read so far stay appended to `line`; keep
            // accumulating until the newline arrives.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                // Undecodable bytes (invalid UTF-8) or a dead socket:
                // answer once if possible, then drop the connection.
                stats.bad_lines.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &writer,
                    &Response::BadRequest {
                        id: String::new(),
                        reason: format!("unreadable line: {e}"),
                    },
                );
                return;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_line(
    line: &str,
    seen_ids: &mut HashSet<String>,
    writer: &Arc<Mutex<TcpStream>>,
    mailbox: &Mailbox<Job>,
    stats: &Arc<ServeStats>,
    flags: &Arc<Flags>,
    cfg: &Arc<ServeCfg>,
) {
    if line.is_empty() {
        return;
    }
    match Request::parse(line) {
        Err(reason) => {
            stats.bad_lines.fetch_add(1, Ordering::Relaxed);
            write_response(
                writer,
                &Response::BadRequest {
                    id: line_id(line),
                    reason,
                },
            );
        }
        Ok(Request::Ping { id }) => write_response(writer, &Response::Pong { id }),
        Ok(Request::Stats { id }) => write_response(
            writer,
            &Response::Stats {
                id,
                body: stats.snapshot(),
            },
        ),
        Ok(Request::Shutdown { id }) => {
            flags.draining.store(true, Ordering::Relaxed);
            while stats.outstanding.load(Ordering::Relaxed) > 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            write_response(
                writer,
                &Response::Drained {
                    id,
                    completed: stats.completed.load(Ordering::Relaxed),
                },
            );
            flags.stop.store(true, Ordering::Relaxed);
        }
        Ok(Request::Match {
            id,
            pairs,
            deadline_ms,
        }) => admit(
            id,
            pairs,
            deadline_ms,
            seen_ids,
            writer,
            mailbox,
            stats,
            flags,
            cfg,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn admit(
    id: String,
    pairs: Vec<(u32, u32)>,
    deadline_ms: Option<u64>,
    seen_ids: &mut HashSet<String>,
    writer: &Arc<Mutex<TcpStream>>,
    mailbox: &Mailbox<Job>,
    stats: &Arc<ServeStats>,
    flags: &Arc<Flags>,
    cfg: &Arc<ServeCfg>,
) {
    if flags.draining.load(Ordering::Relaxed) {
        return shed(writer, stats, cfg, &id, "draining");
    }
    if !seen_ids.insert(id.clone()) {
        stats.duplicate_ids.fetch_add(1, Ordering::Relaxed);
        write_response(writer, &Response::Duplicate { id });
        return;
    }
    match failpoint::check("mailbox_enqueue") {
        Some(Action::Panic) => panic!("failpoint mailbox_enqueue: injected panic"),
        Some(Action::Delay) => std::thread::sleep(Duration::from_millis(20)),
        Some(_) => return shed(writer, stats, cfg, &id, "injected_fault"),
        None => {}
    }
    if stats.outstanding.load(Ordering::Relaxed) >= cfg.inflight_cap as u64 {
        return shed(writer, stats, cfg, &id, "overloaded");
    }
    let job = Job::new(
        id.clone(),
        pairs,
        deadline_ms.or(cfg.default_deadline_ms),
        mailbox.len() as u64,
        ReplySink::Tcp(Arc::clone(writer)),
        Arc::clone(stats),
    );
    stats.admitted.fetch_add(1, Ordering::Relaxed);
    stats.outstanding.fetch_add(1, Ordering::Relaxed);
    match mailbox.try_send(job) {
        Ok(()) => {}
        Err((_job, SendError::Full { depth })) => {
            stats.admitted.fetch_sub(1, Ordering::Relaxed);
            stats.outstanding.fetch_sub(1, Ordering::Relaxed);
            shed(
                writer,
                stats,
                cfg,
                &id,
                &format!("queue_full at depth {depth}"),
            );
        }
        Err((_job, SendError::Closed)) => {
            stats.admitted.fetch_sub(1, Ordering::Relaxed);
            stats.outstanding.fetch_sub(1, Ordering::Relaxed);
            shed(writer, stats, cfg, &id, "draining");
        }
    }
}

/// Shed one request: count it, trace it, answer it `rejected`.
fn shed(
    writer: &Arc<Mutex<TcpStream>>,
    stats: &Arc<ServeStats>,
    cfg: &ServeCfg,
    id: &str,
    reason: &str,
) {
    stats.rejected.fetch_add(1, Ordering::Relaxed);
    em_obs::reject(id, reason, cfg.retry_after_ms);
    write_response(
        writer,
        &Response::Rejected {
            id: id.to_string(),
            reason: reason.to_string(),
            retry_after_ms: cfg.retry_after_ms,
        },
    );
}
