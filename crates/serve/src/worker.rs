//! Worker actors: each worker owns one scorer (one cloned trained
//! model), pulls micro-batches from the shared mailbox, and answers
//! every request it takes exactly once.
//!
//! Determinism note: scorers compute each pair's probability
//! row-independently (`predict_proba` draws nothing from the RNG and
//! chunking never changes a bit), so neither micro-batch composition nor
//! worker assignment affects any decision — completed responses are
//! bit-identical to an offline run over the same pairs.

use crate::mailbox::Mailbox;
use crate::protocol::Response;
use crate::server::ServeStats;
use crate::{lock, server};
use em_obs::Stopwatch;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A trained matcher the service can call. `score` must be
/// deterministic and row-independent: the same pair always yields the
/// same `(probability, decision)` regardless of batch composition.
pub trait MatchScorer: Send + 'static {
    /// Score record-index pairs; `Err` fails the whole batch with the
    /// given reason (it is the scorer's error channel, not a panic).
    fn score(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<(f32, bool)>, String>;
}

/// Builds one fresh scorer per (re)started worker. Factories clone a
/// trained model, so replacements decide identically to the worker they
/// replace.
pub type ScorerFactory = Arc<dyn Fn() -> Box<dyn MatchScorer> + Send + Sync>;

/// Where a [`Job`]'s single terminal response is written.
#[derive(Clone)]
pub enum ReplySink {
    /// A live client connection (writes are line-atomic via the mutex).
    Tcp(Arc<Mutex<TcpStream>>),
    /// In-process collection for tests.
    Collect(Arc<Mutex<Vec<Response>>>),
}

impl ReplySink {
    fn deliver(&self, resp: &Response) {
        match self {
            ReplySink::Tcp(stream) => {
                let mut s = lock(stream);
                // A vanished client must not take the worker down; the
                // accounting in `Job::reply` already happened.
                let _ = s.write_all(resp.encode().as_bytes());
                let _ = s.write_all(b"\n");
                let _ = s.flush();
            }
            ReplySink::Collect(sink) => lock(sink).push(resp.clone()),
        }
    }
}

/// How a job terminated, for stats and the `request` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Answered with a match result.
    Ok,
    /// Answered `deadline_exceeded`.
    Deadline,
    /// Answered `failed`.
    Failed,
}

impl Outcome {
    fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Deadline => "deadline_exceeded",
            Outcome::Failed => "failed",
        }
    }
}

/// One admitted match request: the unit the mailbox queues, workers
/// batch, and the supervisor replays after a crash.
#[derive(Clone)]
pub struct Job {
    /// The request id (unique per connection, enforced at admission).
    pub id: String,
    /// The record-index pairs to score.
    pub pairs: Vec<(u32, u32)>,
    /// Deadline in milliseconds from admission, if any.
    pub deadline_ms: Option<u64>,
    /// Crash replays so far; at most one is allowed.
    pub attempts: u32,
    /// Started at admission; drives deadlines and the latency histogram.
    pub admitted: Stopwatch,
    /// Mailbox depth observed at admission (trace context).
    pub queue_at_admit: u64,
    answered: Arc<AtomicBool>,
    sink: ReplySink,
    stats: Arc<ServeStats>,
}

impl Job {
    /// A freshly admitted job. The caller must have already counted it
    /// in `stats.admitted` / `stats.outstanding`.
    pub fn new(
        id: String,
        pairs: Vec<(u32, u32)>,
        deadline_ms: Option<u64>,
        queue_at_admit: u64,
        sink: ReplySink,
        stats: Arc<ServeStats>,
    ) -> Job {
        Job {
            id,
            pairs,
            deadline_ms,
            attempts: 0,
            admitted: Stopwatch::new(),
            queue_at_admit,
            answered: Arc::new(AtomicBool::new(false)),
            sink,
            stats,
        }
    }

    /// Whether the job's deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline_ms
            .is_some_and(|d| self.admitted.secs() * 1000.0 > d as f64)
    }

    /// Whether some path already delivered the terminal response.
    pub fn is_answered(&self) -> bool {
        self.answered.load(Ordering::Relaxed)
    }

    /// Deliver the terminal response exactly once; a second delivery
    /// attempt (a superseded wedged worker racing its replacement) is
    /// suppressed and returns `false`. Accounting — outstanding
    /// decrement, outcome counter, latency histogram, `request` trace
    /// event — happens with the winning delivery only.
    pub fn reply(&self, resp: &Response, outcome: Outcome) -> bool {
        if self
            .answered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.sink.deliver(resp);
        let secs = self.admitted.secs();
        em_obs::metrics::histogram(server::REQUEST_SECS_METRIC, &[]).record(secs);
        em_obs::request(
            self.id.clone(),
            self.pairs.len() as u64,
            self.queue_at_admit,
            self.admitted.micros(),
            outcome.as_str(),
        );
        match outcome {
            Outcome::Ok => self.stats.completed.fetch_add(1, Ordering::Relaxed),
            Outcome::Deadline => self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed),
            Outcome::Failed => self.stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.stats.outstanding.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

/// Everything one worker thread needs; built by the supervisor.
pub(crate) struct WorkerCtx {
    /// Stable slot index (trace identity across restarts).
    pub worker_id: u64,
    /// This incarnation's generation.
    pub gen: u64,
    /// The slot's current generation; when it moves past `gen` this
    /// incarnation has been superseded and must exit without touching
    /// shared state.
    pub slot_gen: Arc<AtomicU64>,
    /// Progress counter the supervisor watches for wedge detection.
    pub liveness: Arc<AtomicU64>,
    /// Batch currently being served, stashed for crash replay.
    pub in_flight: Arc<Mutex<Vec<Job>>>,
    /// The shared request queue.
    pub mailbox: Mailbox<Job>,
    /// Set just before a *normal* return so the supervisor can tell a
    /// clean exit from a panic.
    pub done: Arc<AtomicBool>,
    /// Micro-batch size cap.
    pub batch_max: usize,
}

/// The worker actor body. Runs until the mailbox closes (drain) or the
/// slot generation moves past this incarnation (supersession).
pub(crate) fn worker_loop(ctx: WorkerCtx, mut scorer: Box<dyn MatchScorer>) {
    let mut hb = em_obs::heartbeat("serve_worker", 0);
    loop {
        if ctx.slot_gen.load(Ordering::Relaxed) != ctx.gen {
            ctx.done.store(true, Ordering::Relaxed);
            return;
        }
        let Some(batch) = ctx.mailbox.recv_batch(ctx.batch_max) else {
            ctx.done.store(true, Ordering::Relaxed);
            return;
        };
        if ctx.slot_gen.load(Ordering::Relaxed) != ctx.gen {
            // Superseded while blocked: hand the batch to the replacement.
            for job in batch.into_iter().rev() {
                ctx.mailbox.push_front(job);
            }
            ctx.done.store(true, Ordering::Relaxed);
            return;
        }
        ctx.liveness.fetch_add(1, Ordering::Relaxed);
        // Stash before any fallible work: a panic from here on finds the
        // whole batch in the replay buffer.
        *lock(&ctx.in_flight) = batch.clone();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if job.expired() {
                job.reply(
                    &Response::DeadlineExceeded { id: job.id.clone() },
                    Outcome::Deadline,
                );
            } else {
                live.push(job);
            }
        }
        let mut injected_err = false;
        match em_resilience::failpoint::check("worker_forward") {
            Some(em_resilience::failpoint::Action::Panic) => {
                panic!("failpoint worker_forward: injected panic")
            }
            Some(em_resilience::failpoint::Action::Delay) => {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            Some(_) => injected_err = true,
            None => {}
        }
        if !live.is_empty() {
            let pairs: Vec<(u32, u32)> =
                live.iter().flat_map(|j| j.pairs.iter().copied()).collect();
            let result = {
                let _span = em_obs::span_with(
                    em_obs::names::SPAN_SERVE_BATCH,
                    format!(
                        "worker {}: {} requests, {} pairs",
                        ctx.worker_id,
                        live.len(),
                        pairs.len()
                    ),
                );
                if injected_err {
                    Err("failpoint worker_forward: injected error".to_string())
                } else {
                    scorer.score(&pairs)
                }
            };
            match result {
                Ok(scores) if scores.len() == pairs.len() => {
                    let mut offset = 0;
                    for job in &live {
                        let slice = &scores[offset..offset + job.pairs.len()];
                        offset += job.pairs.len();
                        job.reply(
                            &Response::Matched {
                                id: job.id.clone(),
                                proba: slice.iter().map(|s| s.0).collect(),
                                decision: slice.iter().map(|s| s.1).collect(),
                            },
                            Outcome::Ok,
                        );
                    }
                }
                Ok(scores) => {
                    let reason = format!(
                        "scorer returned {} scores for {} pairs",
                        scores.len(),
                        pairs.len()
                    );
                    for job in &live {
                        job.reply(
                            &Response::Failed {
                                id: job.id.clone(),
                                reason: reason.clone(),
                            },
                            Outcome::Failed,
                        );
                    }
                }
                Err(reason) => {
                    for job in &live {
                        job.reply(
                            &Response::Failed {
                                id: job.id.clone(),
                                reason: reason.clone(),
                            },
                            Outcome::Failed,
                        );
                    }
                }
            }
            if let Some(h) = hb.as_mut() {
                h.tick(pairs.len() as u64, None);
            }
        }
        lock(&ctx.in_flight).clear();
        ctx.liveness.fetch_add(1, Ordering::Relaxed);
    }
}
