//! The supervisor: spawns the worker actors, watches each slot for
//! death (panicked thread) or wedging (no liveness progress while work
//! is in flight), and restarts with bounded exponential backoff.
//!
//! Replay contract: when a worker is lost, the jobs stashed in its
//! in-flight buffer are re-enqueued at the mailbox front **at most
//! once** (`Job::attempts`); a job lost twice is answered `failed`.
//! A wedged worker cannot be killed, only superseded: its slot's
//! generation counter moves on, its replies are suppressed per-job by
//! the answered flag, and its thread exits on its own the next time it
//! observes the stale generation.

use crate::lock;
use crate::mailbox::Mailbox;
use crate::protocol::Response;
use crate::server::ServeStats;
use crate::worker::{worker_loop, Job, Outcome, ScorerFactory, WorkerCtx};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Supervision parameters.
#[derive(Debug, Clone)]
pub struct SupervisorCfg {
    /// Worker actor count.
    pub workers: usize,
    /// Micro-batch size cap per mailbox drain.
    pub batch_max: usize,
    /// No liveness progress for this long while work is in flight marks
    /// a worker wedged.
    pub wedge_ms: u64,
    /// Restart backoff base; doubles per consecutive restart.
    pub backoff_base_ms: u64,
    /// Backoff ceiling (the "bounded" in bounded exponential backoff).
    pub backoff_max_ms: u64,
}

impl Default for SupervisorCfg {
    fn default() -> Self {
        SupervisorCfg {
            workers: 2,
            batch_max: 16,
            wedge_ms: 2_000,
            backoff_base_ms: 10,
            backoff_max_ms: 500,
        }
    }
}

/// One worker slot: the stable identity that survives restarts.
struct Slot {
    worker_id: u64,
    /// Monotonic spawn count; the live incarnation's generation.
    gen: u64,
    slot_gen: Arc<AtomicU64>,
    liveness: Arc<AtomicU64>,
    in_flight: Arc<Mutex<Vec<Job>>>,
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    /// Liveness value at the last poll.
    last_live: u64,
    /// Accumulated poll time without progress while work was pending.
    stalled_ms: u64,
    /// Consecutive restarts without observed progress (backoff driver).
    consecutive: u64,
}

/// The running supervisor: worker threads plus one monitor thread.
pub struct Supervisor {
    stop: Arc<AtomicBool>,
    monitor: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Spawn `cfg.workers` workers over `mailbox` and the monitor thread
    /// that keeps them alive.
    pub fn start(
        mailbox: Mailbox<Job>,
        factory: ScorerFactory,
        stats: Arc<ServeStats>,
        cfg: SupervisorCfg,
    ) -> Supervisor {
        let stop = Arc::new(AtomicBool::new(false));
        let mut slots: Vec<Slot> = (0..cfg.workers.max(1) as u64)
            .map(|worker_id| {
                let mut slot = Slot {
                    worker_id,
                    gen: 0,
                    slot_gen: Arc::new(AtomicU64::new(1)),
                    liveness: Arc::new(AtomicU64::new(0)),
                    in_flight: Arc::new(Mutex::new(Vec::new())),
                    done: Arc::new(AtomicBool::new(false)),
                    handle: None,
                    last_live: 0,
                    stalled_ms: 0,
                    consecutive: 0,
                };
                slot.gen = 1;
                spawn_worker(&mut slot, &mailbox, &factory, cfg.batch_max);
                slot
            })
            .collect();
        let monitor_stop = Arc::clone(&stop);
        let monitor = std::thread::spawn(move || {
            monitor_loop(&mut slots, &mailbox, &factory, &stats, &cfg, &monitor_stop);
        });
        Supervisor {
            stop,
            monitor: Some(monitor),
        }
    }

    /// Stop supervision and join the monitor (which joins the workers).
    /// Call only after closing the mailbox, so workers drain and exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }
}

fn spawn_worker(
    slot: &mut Slot,
    mailbox: &Mailbox<Job>,
    factory: &ScorerFactory,
    batch_max: usize,
) {
    let ctx = WorkerCtx {
        worker_id: slot.worker_id,
        gen: slot.gen,
        slot_gen: Arc::clone(&slot.slot_gen),
        liveness: Arc::clone(&slot.liveness),
        in_flight: Arc::clone(&slot.in_flight),
        mailbox: mailbox.clone(),
        done: Arc::clone(&slot.done),
        batch_max,
    };
    let scorer = factory();
    slot.handle = Some(std::thread::spawn(move || worker_loop(ctx, scorer)));
}

fn monitor_loop(
    slots: &mut [Slot],
    mailbox: &Mailbox<Job>,
    factory: &ScorerFactory,
    stats: &Arc<ServeStats>,
    cfg: &SupervisorCfg,
    stop: &AtomicBool,
) {
    let poll_ms = (cfg.wedge_ms / 4).clamp(1, 25);
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(poll_ms));
        for slot in slots.iter_mut() {
            let live = slot.liveness.load(Ordering::Relaxed);
            if live != slot.last_live {
                slot.last_live = live;
                slot.stalled_ms = 0;
                slot.consecutive = 0;
            }
            let finished = slot.handle.as_ref().is_none_or(|h| h.is_finished());
            if finished {
                if slot.done.load(Ordering::Relaxed) {
                    // Clean exit (drain); nothing to supervise.
                    continue;
                }
                restart(slot, "panic", mailbox, factory, stats, cfg);
            } else if !lock(&slot.in_flight).is_empty() || !mailbox.is_empty() {
                slot.stalled_ms += poll_ms;
                if slot.stalled_ms >= cfg.wedge_ms {
                    restart(slot, "wedged", mailbox, factory, stats, cfg);
                }
            } else {
                slot.stalled_ms = 0;
            }
        }
    }
    // Shutdown: workers exit once the (closed) mailbox drains.
    for slot in slots.iter_mut() {
        if let Some(h) = slot.handle.take() {
            let _ = h.join();
        }
    }
}

/// Replace a dead or wedged worker: supersede the old incarnation,
/// replay its in-flight jobs (at most once each), back off, respawn.
fn restart(
    slot: &mut Slot,
    reason: &str,
    mailbox: &Mailbox<Job>,
    factory: &ScorerFactory,
    stats: &Arc<ServeStats>,
    cfg: &SupervisorCfg,
) {
    slot.gen += 1;
    slot.slot_gen.store(slot.gen, Ordering::Relaxed);
    match slot.handle.take() {
        // A panicked thread joins immediately; reap it.
        Some(h) if h.is_finished() => drop(h.join()),
        // A wedged thread cannot be joined without hanging the monitor.
        // Detach it: superseded, its replies are CAS-suppressed, and it
        // exits on its own at its next generation check.
        Some(h) => drop(h),
        None => {}
    }
    slot.consecutive += 1;
    stats.restarts.fetch_add(1, Ordering::Relaxed);
    let backoff = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << (slot.consecutive - 1).min(16))
        .min(cfg.backoff_max_ms.max(cfg.backoff_base_ms));
    em_obs::worker_restart(slot.worker_id, slot.consecutive, backoff, reason);

    // Replay what the lost incarnation was holding. The buffer is
    // swapped out (not cleared in place) so the detached thread keeps
    // its own clone and cannot touch the replacement's stash.
    let stranded = std::mem::take(&mut *lock(&slot.in_flight));
    for mut job in stranded {
        if job.is_answered() {
            continue;
        }
        if job.attempts >= 1 {
            job.reply(
                &Response::Failed {
                    id: job.id.clone(),
                    reason: format!("lost to a {reason} worker twice"),
                },
                Outcome::Failed,
            );
        } else {
            job.attempts += 1;
            mailbox.push_front(job);
        }
    }

    std::thread::sleep(Duration::from_millis(backoff));
    // Fresh per-incarnation state: the detached thread holds the old
    // Arcs, so it can neither tick the new liveness counter nor clear
    // the new in-flight stash.
    slot.liveness = Arc::new(AtomicU64::new(0));
    slot.in_flight = Arc::new(Mutex::new(Vec::new()));
    slot.done = Arc::new(AtomicBool::new(false));
    slot.last_live = 0;
    slot.stalled_ms = 0;
    spawn_worker(slot, mailbox, factory, cfg.batch_max);
}
