//! A small blocking client over the line protocol. The CLI's load
//! driver and the tests go through this type, keeping every raw socket
//! in the workspace inside `crates/serve` (the `net-use` lint enforces
//! exactly that).

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Give up on a pair after this many shed-and-retry rounds.
const DRIVE_ATTEMPTS: u64 = 2_000;

/// One connection to a running server.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Send one request line. Pipelining is fine: responses may arrive
    /// in any order (match them up by id).
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.stream.write_all(req.encode().as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Block for the next response line. A server-side close is
    /// `UnexpectedEof`; an unparseable line is `InvalidData`.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return Response::parse(trimmed)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e));
        }
    }

    /// Send one request and block for one response. Only safe when
    /// nothing else is pipelined on this connection.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}

/// Drive `pairs` through a running server with `connections` concurrent
/// clients (one pair per request, so the server's micro-batching — not
/// the client — does the coalescing). `rejected` answers are retried
/// after the server's `retry_after_ms` hint, under a fresh request id
/// each time (ids are single-use per connection). Results come back in
/// input order; any other non-match terminal answer is an error.
pub fn drive_pairs(
    addr: &str,
    pairs: &[(u32, u32)],
    connections: usize,
) -> std::io::Result<Vec<(f32, bool)>> {
    let conns = connections.clamp(1, pairs.len().max(1));
    let mut handles = Vec::with_capacity(conns);
    for c in 0..conns {
        let addr = addr.to_string();
        // Round-robin sharding keeps every connection busy to the end,
        // so concurrent load (and thus batching) is sustained.
        let share: Vec<(usize, (u32, u32))> = pairs
            .iter()
            .copied()
            .enumerate()
            .skip(c)
            .step_by(conns)
            .collect();
        handles.push(std::thread::spawn(move || drive_share(&addr, &share)));
    }
    let mut out: Vec<Option<(f32, bool)>> = vec![None; pairs.len()];
    for h in handles {
        let share = h
            .join()
            .map_err(|_| std::io::Error::other("driver connection thread panicked"))??;
        for (i, v) in share {
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|v| v.ok_or_else(|| std::io::Error::other("a pair was never answered")))
        .collect()
}

/// One connection's slice of the drive: sequential request/response
/// with shed-retry, tagged with the original input positions.
fn drive_share(
    addr: &str,
    share: &[(usize, (u32, u32))],
) -> std::io::Result<Vec<(usize, (f32, bool))>> {
    let mut client = Client::connect(addr)?;
    let mut out = Vec::with_capacity(share.len());
    for &(i, pair) in share {
        out.push((i, drive_one(&mut client, i, pair)?));
    }
    Ok(out)
}

fn drive_one(client: &mut Client, i: usize, pair: (u32, u32)) -> std::io::Result<(f32, bool)> {
    for attempt in 0..DRIVE_ATTEMPTS {
        let resp = client.call(&Request::Match {
            id: format!("d{i}a{attempt}"),
            pairs: vec![pair],
            deadline_ms: None,
        })?;
        match resp {
            Response::Matched {
                proba, decision, ..
            } if proba.len() == 1 && decision.len() == 1 => {
                return Ok((proba[0], decision[0]));
            }
            Response::Rejected { retry_after_ms, .. } => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1_000)));
            }
            other => {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("pair {i}: unexpected terminal answer {other:?}"),
                ));
            }
        }
    }
    Err(std::io::Error::new(
        ErrorKind::TimedOut,
        format!("pair {i}: still shed after {DRIVE_ATTEMPTS} attempts"),
    ))
}
