//! Chaos tests over a live loopback server: a worker killed mid-batch
//! is restarted and every request is still answered exactly once; a
//! wedged worker is superseded without double answers; overload sheds
//! with typed rejections while every accepted request completes; and
//! expired requests get `deadline_exceeded`, never silence.

use em_serve::protocol::{Request, Response};
use em_serve::{Client, MatchScorer, ScorerFactory, ServeCfg, Server};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The deterministic reference scorer: probability is a pure function
/// of the pair, so expected responses are computable in the test.
fn expected(l: u32, r: u32) -> (f32, bool) {
    let p = ((l.wrapping_mul(31).wrapping_add(r)) % 100) as f32 / 100.0;
    (p, p > 0.5)
}

struct EchoScorer;

impl MatchScorer for EchoScorer {
    fn score(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<(f32, bool)>, String> {
        Ok(pairs.iter().map(|&(l, r)| expected(l, r)).collect())
    }
}

/// Panics on its first `score` call; used for the first N instances the
/// factory hands out, after which replacements behave.
struct PanicScorer;

impl MatchScorer for PanicScorer {
    fn score(&mut self, _pairs: &[(u32, u32)]) -> Result<Vec<(f32, bool)>, String> {
        panic!("chaos: injected worker crash")
    }
}

/// Sleeps before scoring (overload / wedge / deadline fodder).
struct SlowScorer(u64);

impl MatchScorer for SlowScorer {
    fn score(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<(f32, bool)>, String> {
        thread::sleep(Duration::from_millis(self.0));
        Ok(pairs.iter().map(|&(l, r)| expected(l, r)).collect())
    }
}

/// Factory whose first `crashes` scorers panic on first use.
fn crashy_factory(crashes: u64) -> ScorerFactory {
    let built = Arc::new(AtomicU64::new(0));
    Arc::new(move || {
        let n = built.fetch_add(1, Ordering::Relaxed);
        if n < crashes {
            Box::new(PanicScorer)
        } else {
            Box::new(EchoScorer)
        }
    })
}

fn start(
    cfg: ServeCfg,
    factory: ScorerFactory,
) -> (String, thread::JoinHandle<em_serve::DrainSummary>) {
    let server = Server::bind(cfg, factory).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// Drive `n` match requests (ids `r0..`), collect every terminal
/// response by id, asserting no id is answered twice.
fn drive(client: &mut Client, n: u32, deadline_ms: Option<u64>) -> HashMap<String, Response> {
    for i in 0..n {
        client
            .send(&Request::Match {
                id: format!("r{i}"),
                pairs: vec![(i, i + 1), (i * 2, i)],
                deadline_ms,
            })
            .expect("send");
    }
    let mut got: HashMap<String, Response> = HashMap::new();
    for _ in 0..n {
        let resp = client.recv().expect("recv");
        let prev = got.insert(resp.id().to_string(), resp);
        assert!(prev.is_none(), "request answered twice: {prev:?}");
    }
    got
}

fn assert_matched(resp: &Response, i: u32) {
    let pairs = [(i, i + 1), (i * 2, i)];
    match resp {
        Response::Matched {
            proba, decision, ..
        } => {
            let want: Vec<(f32, bool)> = pairs.iter().map(|&(l, r)| expected(l, r)).collect();
            assert_eq!(proba, &want.iter().map(|w| w.0).collect::<Vec<_>>());
            assert_eq!(decision, &want.iter().map(|w| w.1).collect::<Vec<_>>());
        }
        other => panic!("r{i}: expected a match result, got {other:?}"),
    }
}

fn shutdown(client: &mut Client) -> u64 {
    match client
        .call(&Request::Shutdown { id: "q".into() })
        .expect("shutdown")
    {
        Response::Drained { completed, .. } => completed,
        other => panic!("expected Drained, got {other:?}"),
    }
}

#[test]
fn killed_worker_is_restarted_and_no_request_is_lost_or_doubled() {
    let cfg = ServeCfg {
        workers: 1,
        batch_max: 8,
        backoff_base_ms: 1,
        backoff_max_ms: 5,
        ..Default::default()
    };
    let (addr, server) = start(cfg, crashy_factory(1));
    let mut client = Client::connect(&addr).expect("connect");

    let got = drive(&mut client, 6, None);
    for i in 0..6 {
        assert_matched(&got[&format!("r{i}")], i);
    }
    let completed = shutdown(&mut client);
    assert_eq!(completed, 6);
    let summary = server.join().expect("server thread");
    assert!(
        summary.restarts >= 1,
        "the crash must be supervised: {summary:?}"
    );
    assert_eq!(summary.completed, 6);
    assert_eq!(summary.failed, 0);
}

#[test]
fn twice_lost_requests_fail_instead_of_replaying_forever() {
    let cfg = ServeCfg {
        workers: 1,
        batch_max: 8,
        backoff_base_ms: 1,
        backoff_max_ms: 5,
        ..Default::default()
    };
    // Every scorer the factory ever builds panics: first loss replays,
    // second loss must answer `failed` (at-most-once replay).
    let (addr, server) = start(cfg, crashy_factory(u64::MAX));
    let mut client = Client::connect(&addr).expect("connect");

    let got = drive(&mut client, 3, None);
    for i in 0..3 {
        match &got[&format!("r{i}")] {
            Response::Failed { reason, .. } => {
                assert!(reason.contains("twice"), "unexpected reason: {reason}");
            }
            other => panic!("r{i}: expected Failed after double loss, got {other:?}"),
        }
    }
    let _ = shutdown(&mut client);
    let summary = server.join().expect("server thread");
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.failed, 3);
    assert!(summary.restarts >= 2, "{summary:?}");
}

#[test]
fn wedged_worker_is_superseded_and_answers_exactly_once() {
    let cfg = ServeCfg {
        workers: 1,
        batch_max: 8,
        wedge_ms: 40,
        backoff_base_ms: 1,
        backoff_max_ms: 5,
        ..Default::default()
    };
    // First scorer wedges for far longer than wedge_ms, then finishes
    // and races the replacement; the CAS must keep replies single.
    let built = Arc::new(AtomicU64::new(0));
    let factory: ScorerFactory = Arc::new(move || {
        if built.fetch_add(1, Ordering::Relaxed) == 0 {
            Box::new(SlowScorer(400))
        } else {
            Box::new(EchoScorer)
        }
    });
    let (addr, server) = start(cfg, factory);
    let mut client = Client::connect(&addr).expect("connect");

    let got = drive(&mut client, 4, None);
    for i in 0..4 {
        assert_matched(&got[&format!("r{i}")], i);
    }
    // Give the detached wedged worker time to wake and lose the race
    // before draining, so the duplicate-suppression path actually runs.
    thread::sleep(Duration::from_millis(450));
    let _ = shutdown(&mut client);
    let summary = server.join().expect("server thread");
    assert!(
        summary.restarts >= 1,
        "wedge must trigger supervision: {summary:?}"
    );
    assert_eq!(summary.completed, 4);
}

#[test]
fn overload_sheds_typed_rejections_and_completes_the_rest() {
    let cfg = ServeCfg {
        workers: 1,
        batch_max: 1,
        queue_cap: 1,
        inflight_cap: 2,
        retry_after_ms: 7,
        ..Default::default()
    };
    let (addr, server) = start(cfg, Arc::new(|| Box::new(SlowScorer(30))));
    let mut client = Client::connect(&addr).expect("connect");

    let got = drive(&mut client, 10, None);
    let mut rejected = 0;
    let mut matched = 0;
    for i in 0..10 {
        match &got[&format!("r{i}")] {
            Response::Rejected { retry_after_ms, .. } => {
                assert_eq!(*retry_after_ms, 7);
                rejected += 1;
            }
            resp @ Response::Matched { .. } => {
                assert_matched(resp, i);
                matched += 1;
            }
            other => panic!("r{i}: unexpected {other:?}"),
        }
    }
    assert!(
        rejected >= 1,
        "a 10-deep burst over a 2-slot service must shed"
    );
    assert!(matched >= 1, "admitted requests must complete");
    let _ = shutdown(&mut client);
    let summary = server.join().expect("server thread");
    assert_eq!(summary.completed, matched);
    assert_eq!(summary.rejected, rejected);
}

#[test]
fn expired_requests_are_answered_deadline_exceeded_not_dropped() {
    let cfg = ServeCfg {
        workers: 1,
        batch_max: 1,
        ..Default::default()
    };
    let (addr, server) = start(cfg, Arc::new(|| Box::new(SlowScorer(60))));
    let mut client = Client::connect(&addr).expect("connect");

    client
        .send(&Request::Match {
            id: "head".into(),
            pairs: vec![(1, 2)],
            deadline_ms: None,
        })
        .expect("send");
    // Queued behind a 60ms forward with a 1ms budget: must expire.
    client
        .send(&Request::Match {
            id: "late".into(),
            pairs: vec![(3, 4)],
            deadline_ms: Some(1),
        })
        .expect("send");
    let mut got = HashMap::new();
    for _ in 0..2 {
        let resp = client.recv().expect("recv");
        got.insert(resp.id().to_string(), resp);
    }
    assert!(
        matches!(got["head"], Response::Matched { .. }),
        "{:?}",
        got["head"]
    );
    assert!(
        matches!(got["late"], Response::DeadlineExceeded { .. }),
        "{:?}",
        got["late"]
    );
    let _ = shutdown(&mut client);
    let summary = server.join().expect("server thread");
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.failed, 1, "expiry counts as a failed outcome");
}

#[test]
fn duplicate_ids_ping_stats_and_bad_lines_are_typed() {
    let (addr, server) = start(
        ServeCfg {
            workers: 1,
            ..Default::default()
        },
        Arc::new(|| Box::new(EchoScorer)),
    );
    let mut client = Client::connect(&addr).expect("connect");

    assert_eq!(
        client
            .call(&Request::Ping { id: "p".into() })
            .expect("ping"),
        Response::Pong { id: "p".into() }
    );
    let req = Request::Match {
        id: "dup".into(),
        pairs: vec![(1, 1)],
        deadline_ms: None,
    };
    assert!(matches!(
        client.call(&req).expect("first"),
        Response::Matched { .. }
    ));
    assert_eq!(
        client.call(&req).expect("second"),
        Response::Duplicate { id: "dup".into() }
    );
    match client
        .call(&Request::Stats { id: "s".into() })
        .expect("stats")
    {
        Response::Stats { body, .. } => {
            assert_eq!(body.admitted, 1);
            assert_eq!(body.completed, 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    let _ = shutdown(&mut client);
    let _ = server.join().expect("server thread");
}
