//! Protocol totality properties: every frame the encoder can produce is
//! parsed back to the identical value, and arbitrary byte salad is a
//! typed error — the parser must never panic, whatever a client sends.

use em_serve::protocol::{Request, Response, StatsBody};
use proptest::collection;
use proptest::prelude::*;

/// Build an id string from raw bytes (ASCII incl. controls and quotes,
/// so the JSON escaping path is exercised), never empty.
fn id_from(bytes: &[u8]) -> String {
    let mut s: String = bytes.iter().map(|&b| char::from(b % 127)).collect();
    if s.is_empty() {
        s.push('x');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn match_requests_round_trip(
        id_bytes in collection::vec(1u8..127, 1..12),
        lefts in collection::vec(0u32..1 << 30, 1..9),
        rights in collection::vec(0u32..1 << 30, 1..9),
        deadline in 0u64..100_000,
        with_deadline in any::<bool>(),
    ) {
        let n = lefts.len().min(rights.len());
        let req = Request::Match {
            id: id_from(&id_bytes),
            pairs: lefts.iter().zip(&rights).take(n).map(|(&l, &r)| (l, r)).collect(),
            deadline_ms: with_deadline.then_some(deadline),
        };
        let line = req.encode();
        prop_assert_eq!(Request::parse(&line), Ok(req));
    }

    #[test]
    fn control_requests_round_trip(
        id_bytes in collection::vec(1u8..127, 1..12),
        which in 0usize..3,
    ) {
        let id = id_from(&id_bytes);
        let req = match which {
            0 => Request::Ping { id },
            1 => Request::Stats { id },
            _ => Request::Shutdown { id },
        };
        let line = req.encode();
        prop_assert_eq!(Request::parse(&line), Ok(req));
    }

    #[test]
    fn responses_round_trip(
        id_bytes in collection::vec(1u8..127, 1..12),
        reason_bytes in collection::vec(0u8..255, 0..20),
        proba in collection::vec(0.0f32..1.0, 1..9),
        counts in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        restarts in 0u64..1 << 40,
        which in 0usize..9,
    ) {
        let id = id_from(&id_bytes);
        let reason = id_from(&reason_bytes);
        let resp = match which {
            0 => Response::Matched {
                id,
                decision: proba.iter().map(|&p| p > 0.5).collect(),
                proba,
            },
            1 => Response::Rejected { id, reason, retry_after_ms: counts.0 },
            2 => Response::DeadlineExceeded { id },
            3 => Response::Duplicate { id },
            4 => Response::Failed { id, reason },
            5 => Response::BadRequest { id, reason },
            6 => Response::Pong { id },
            7 => Response::Stats {
                id,
                body: StatsBody {
                    admitted: counts.0,
                    completed: counts.1,
                    rejected: counts.2,
                    failed: counts.3,
                    restarts,
                },
            },
            _ => Response::Drained { id, completed: counts.1 },
        };
        let line = resp.encode();
        prop_assert_eq!(Response::parse(&line), Ok(resp));
    }

    #[test]
    fn garbage_never_panics(bytes in collection::vec(0u8..255, 0..80)) {
        // Torn lines, binary junk, half-JSON: a typed Err (or a valid
        // parse, if the fuzz happens to spell one) — never a panic.
        let line: String = bytes.iter().map(|&b| char::from(b)).collect();
        let _ = Request::parse(&line);
        let _ = Response::parse(&line);
        let _ = em_serve::protocol::line_id(&line);
    }

    #[test]
    fn truncations_of_valid_frames_never_panic(
        lefts in collection::vec(0u32..1000, 1..5),
        cut in 0usize..200,
    ) {
        let req = Request::Match {
            id: "r".into(),
            pairs: lefts.iter().map(|&l| (l, l + 1)).collect(),
            deadline_ms: Some(9),
        };
        let line = req.encode();
        let torn = &line[..cut.min(line.len())];
        if torn.len() < line.len() {
            prop_assert!(Request::parse(torn).is_err(), "torn frame parsed: {torn}");
        }
    }
}
